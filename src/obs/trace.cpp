#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/json.hpp"
#include "obs/live.hpp"
#include "obs/metrics.hpp"

namespace rcf::obs {

namespace {

// Flush a thread's buffer into the central store once it holds this many
// events, bounding per-thread memory without taking the store mutex per
// span.
constexpr std::size_t kFlushThreshold = 1 << 15;

thread_local int t_rank = 0;

void append_event_json(const TraceEvent& ev, bool chrome, std::string& out) {
  out += "{\"name\":\"";
  json_escape_to(ev.name, out);
  out += "\"";
  char buf[160];
  if (chrome) {
    std::snprintf(buf, sizeof(buf),
                  ",\"ph\":\"X\",\"pid\":%d,\"tid\":%u,\"ts\":%lld,"
                  "\"dur\":%lld",
                  ev.rank, ev.tid, static_cast<long long>(ev.start_us),
                  static_cast<long long>(ev.dur_us));
    out += buf;
    if (ev.words != 0.0 || ev.seq >= 0) {
      out += ",\"args\":{";
      bool first = true;
      if (ev.words != 0.0) {
        std::snprintf(buf, sizeof(buf), "\"words\":%.17g", ev.words);
        out += buf;
        first = false;
      }
      if (ev.seq >= 0) {
        std::snprintf(buf, sizeof(buf), "%s\"seq\":%lld", first ? "" : ",",
                      static_cast<long long>(ev.seq));
        out += buf;
      }
      out += "}";
    }
  } else {
    std::snprintf(buf, sizeof(buf),
                  ",\"rank\":%d,\"tid\":%u,\"ts_us\":%lld,\"dur_us\":%lld,"
                  "\"words\":%.17g",
                  ev.rank, ev.tid, static_cast<long long>(ev.start_us),
                  static_cast<long long>(ev.dur_us), ev.words);
    out += buf;
    if (ev.seq >= 0) {
      std::snprintf(buf, sizeof(buf), ",\"seq\":%lld",
                    static_cast<long long>(ev.seq));
      out += buf;
    }
  }
  out += "}";
}

void append_chrome_body(const std::vector<TraceEvent>& events,
                        std::string& body) {
  body += "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) {
      body += ",\n";
    }
    append_event_json(events[i], /*chrome=*/true, body);
  }
  body += "],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace

std::string expand_rank_path(const std::string& path, int rank) {
  std::string out;
  out.reserve(path.size() + 4);
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (path[i] == '%' && i + 1 < path.size() && path[i + 1] == 'r') {
      out += std::to_string(rank);
      ++i;
    } else {
      out += path[i];
    }
  }
  return out;
}

void set_thread_rank(int rank) { t_rank = rank; }

int thread_rank() { return t_rank; }

const PhaseStat* find_phase(const PhaseSummary& summary,
                            std::string_view name) {
  for (const auto& stat : summary) {
    if (stat.name == name) {
      return &stat;
    }
  }
  return nullptr;
}

void append_phase(PhaseSummary& summary, const char* name,
                  const PhaseAgg& agg) {
  if (agg.count == 0) {
    return;
  }
  summary.push_back(PhaseStat{name, agg.count,
                              static_cast<double>(agg.us) * 1e-6, agg.words});
}

std::string phase_table(const PhaseSummary& summary) {
  std::ostringstream out;
  out << "phase            count       seconds   payload words\n";
  char line[128];
  for (const auto& stat : summary) {
    std::snprintf(line, sizeof(line), "%-14s %8llu %13.6f %15.0f\n",
                  stat.name.c_str(),
                  static_cast<unsigned long long>(stat.count), stat.seconds,
                  stat.payload_words);
    out << line;
  }
  return out.str();
}

struct TraceSession::ThreadBuffer {
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
  ~ThreadBuffer() {
    // The session singleton is intentionally leaked, so flushing from any
    // thread-exit order (including after main returns) is safe.
    TraceSession::global().flush_buffer(*this);
  }
};

TraceSession::TraceSession() : epoch_(std::chrono::steady_clock::now()) {
  TraceConfig env_config;
  if (const char* p = std::getenv("RCF_TRACE"); p != nullptr && *p != '\0') {
    env_config.trace_out = std::string(p) == "1" ? "rcf_trace.json" : p;
  }
  if (const char* p = std::getenv("RCF_TRACE_JSONL");
      p != nullptr && *p != '\0') {
    env_config.jsonl_out = p;
  }
  if (const char* p = std::getenv("RCF_METRICS"); p != nullptr && *p != '\0') {
    env_config.metrics_out = p;
  }
  if (!env_config.trace_out.empty() || !env_config.jsonl_out.empty() ||
      !env_config.metrics_out.empty()) {
    start(env_config);
    std::atexit([] { TraceSession::global().write_outputs(); });
  }
  live_autoconfigure_from_env();
}

TraceSession& TraceSession::global() {
  static TraceSession* session = new TraceSession();
  return *session;
}

namespace {

// Touch the session at program start: TraceScope's fast path now tests
// only the packed gate word, so the RCF_TRACE / RCF_LIVE env autostart
// (which lives in the session constructor) must not depend on some code
// path calling global() first.
const bool g_env_autostart = (TraceSession::global(), true);

}  // namespace

TraceSession::ThreadBuffer& TraceSession::local_buffer() {
  thread_local ThreadBuffer buffer{
      {}, next_tid_.fetch_add(1, std::memory_order_relaxed)};
  return buffer;
}

void TraceSession::flush_buffer(ThreadBuffer& buffer) {
  if (buffer.events.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  store_.insert(store_.end(), buffer.events.begin(), buffer.events.end());
  buffer.events.clear();
}

void TraceSession::start(TraceConfig config) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    store_.clear();
    config_ = std::move(config);
  }
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
  detail::set_gate_bit(detail::kGateTrace, true);
}

void TraceSession::stop() {
  detail::set_gate_bit(detail::kGateTrace, false);
  enabled_.store(false, std::memory_order_relaxed);
  flush_buffer(local_buffer());
}

std::int64_t TraceSession::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceSession::record(const char* name, std::int64_t start_us,
                          std::int64_t dur_us, double words,
                          std::int64_t seq) {
  if (!enabled()) {
    return;
  }
  ThreadBuffer& buffer = local_buffer();
  buffer.events.push_back(
      TraceEvent{name, t_rank, buffer.tid, start_us, dur_us, words, seq});
  if (buffer.events.size() >= kFlushThreshold) {
    flush_buffer(buffer);
  }
}

std::vector<TraceEvent> TraceSession::snapshot() {
  flush_buffer(local_buffer());
  std::lock_guard<std::mutex> lock(mutex_);
  return store_;
}

void TraceSession::clear() {
  local_buffer().events.clear();
  std::lock_guard<std::mutex> lock(mutex_);
  store_.clear();
}

std::uint64_t TraceSession::count_spans(std::string_view name) {
  std::uint64_t n = 0;
  for (const auto& ev : snapshot()) {
    if (name == ev.name) {
      ++n;
    }
  }
  return n;
}

void TraceSession::write_chrome_trace(std::ostream& out) {
  const auto events = snapshot();
  std::string body;
  body.reserve(events.size() * 96 + 64);
  append_chrome_body(events, body);
  out << body;
}

void TraceSession::write_jsonl(std::ostream& out) {
  std::string line;
  for (const auto& ev : snapshot()) {
    line.clear();
    append_event_json(ev, /*chrome=*/false, line);
    line += "\n";
    out << line;
  }
}

bool TraceSession::write_trace_file(const std::string& path,
                                    const std::vector<TraceEvent>& events,
                                    bool chrome) {
  const bool per_rank = path.find("%r") != std::string::npos;
  std::vector<int> ranks{0};
  if (per_rank) {
    ranks.clear();
    for (const auto& ev : events) {
      if (std::find(ranks.begin(), ranks.end(), ev.rank) == ranks.end()) {
        ranks.push_back(ev.rank);
      }
    }
    if (ranks.empty()) {
      ranks.push_back(0);  // still produce the (empty) rank-0 file
    }
  }
  bool ok = true;
  for (const int rank : ranks) {
    std::ofstream out(per_rank ? expand_rank_path(path, rank) : path);
    if (!out) {
      ok = false;
      continue;
    }
    std::string body;
    if (chrome) {
      if (per_rank) {
        std::vector<TraceEvent> mine;
        for (const auto& ev : events) {
          if (ev.rank == rank) {
            mine.push_back(ev);
          }
        }
        append_chrome_body(mine, body);
      } else {
        append_chrome_body(events, body);
      }
    } else {
      for (const auto& ev : events) {
        if (per_rank && ev.rank != rank) {
          continue;
        }
        append_event_json(ev, /*chrome=*/false, body);
        body += "\n";
      }
    }
    out << body;
    ok = static_cast<bool>(out) && ok;
  }
  return ok;
}

bool TraceSession::write_outputs() {
  TraceConfig config;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    config = config_;
  }
  const std::vector<TraceEvent> events = snapshot();
  // Warn once when a multi-rank trace goes to a single shared file: the
  // ranks interleave in one stream, and a second process writing the same
  // path would clobber it.  `%r` in the path switches to per-rank files.
  const bool has_placeholder =
      (config.trace_out.empty() ||
       config.trace_out.find("%r") != std::string::npos) &&
      (config.jsonl_out.empty() ||
       config.jsonl_out.find("%r") != std::string::npos);
  if (!has_placeholder &&
      (!config.trace_out.empty() || !config.jsonl_out.empty())) {
    int first_rank = 0;
    bool multi_rank = false;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (i == 0) {
        first_rank = events[i].rank;
      } else if (events[i].rank != first_rank) {
        multi_rank = true;
        break;
      }
    }
    if (multi_rank && !warned_shared_path_.exchange(true)) {
      std::fprintf(stderr,
                   "[rcf] warning: multi-rank trace written to a single "
                   "file; use a %%r rank placeholder in the trace path "
                   "(e.g. trace.%%r.json) for per-rank files\n");
    }
  }
  bool ok = true;
  if (!config.trace_out.empty()) {
    ok = write_trace_file(config.trace_out, events, /*chrome=*/true) && ok;
  }
  if (!config.jsonl_out.empty()) {
    ok = write_trace_file(config.jsonl_out, events, /*chrome=*/false) && ok;
  }
  if (!config.metrics_out.empty()) {
    // Metrics are process-global (one registry, not per rank): a stray
    // placeholder expands to rank 0 rather than fanning out.
    ok = MetricsRegistry::global().write(
             expand_rank_path(config.metrics_out, 0)) &&
         ok;
  }
  return ok;
}

ScopedSession::ScopedSession(std::string trace_out, std::string jsonl_out,
                             std::string metrics_out, std::string live_out) {
  if (!live_out.empty()) {
    LiveConfig config;
    config.out = std::move(live_out);
    if (const char* p = std::getenv("RCF_LIVE_PERIOD_MS");
        p != nullptr && *p != '\0') {
      const int v = std::atoi(p);
      if (v > 0) {
        config.period_ms = v;
      }
    }
    config.watchdog = watchdog_config_from_env();
    live_active_ = LiveMonitor::global().start(std::move(config));
  }
  if (trace_out.empty() && jsonl_out.empty() && metrics_out.empty()) {
    return;
  }
  TraceSession::global().start(TraceConfig{
      std::move(trace_out), std::move(jsonl_out), std::move(metrics_out)});
  active_ = true;
}

ScopedSession::~ScopedSession() {
  if (live_active_) {
    LiveMonitor::global().stop();
  }
  if (!active_) {
    return;
  }
  auto& session = TraceSession::global();
  session.stop();
  if (!session.write_outputs()) {
    std::fprintf(stderr, "[rcf] warning: could not write trace outputs\n");
  }
}

TraceScope::~TraceScope() {
  if (!active_ && !live_) {
    return;
  }
  std::int64_t dur = 0;
  if (active_) {
    auto& session = TraceSession::global();
    const std::int64_t end_us = session.now_us();
    dur = end_us - start_us_;
    session.record(name_, start_us_, dur, words_, seq_);
    if (latency_ != nullptr) {
      latency_->observe(static_cast<double>(dur));
    }
  } else {
    dur = live_now_us() - live_start_us_;
  }
  if (live_) {
    if (seq_ >= 0) {
      telemetry_publish_slow(TelemetryKind::kCollectiveEnd, name_,
                             static_cast<double>(seq_),
                             static_cast<double>(dur));
    } else {
      telemetry_publish_slow(TelemetryKind::kSpan, name_,
                             static_cast<double>(dur), words_);
    }
  }
}

}  // namespace rcf::obs
