#include "obs/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/json.hpp"
#include "obs/metrics.hpp"

namespace rcf::obs {

namespace {

// Flush a thread's buffer into the central store once it holds this many
// events, bounding per-thread memory without taking the store mutex per
// span.
constexpr std::size_t kFlushThreshold = 1 << 15;

thread_local int t_rank = 0;

void append_event_json(const TraceEvent& ev, bool chrome, std::string& out) {
  out += "{\"name\":\"";
  json_escape_to(ev.name, out);
  out += "\"";
  char buf[160];
  if (chrome) {
    std::snprintf(buf, sizeof(buf),
                  ",\"ph\":\"X\",\"pid\":%d,\"tid\":%u,\"ts\":%lld,"
                  "\"dur\":%lld",
                  ev.rank, ev.tid, static_cast<long long>(ev.start_us),
                  static_cast<long long>(ev.dur_us));
    out += buf;
    if (ev.words != 0.0) {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"words\":%.17g}", ev.words);
      out += buf;
    }
  } else {
    std::snprintf(buf, sizeof(buf),
                  ",\"rank\":%d,\"tid\":%u,\"ts_us\":%lld,\"dur_us\":%lld,"
                  "\"words\":%.17g",
                  ev.rank, ev.tid, static_cast<long long>(ev.start_us),
                  static_cast<long long>(ev.dur_us), ev.words);
    out += buf;
  }
  out += "}";
}

}  // namespace

void set_thread_rank(int rank) { t_rank = rank; }

int thread_rank() { return t_rank; }

const PhaseStat* find_phase(const PhaseSummary& summary,
                            std::string_view name) {
  for (const auto& stat : summary) {
    if (stat.name == name) {
      return &stat;
    }
  }
  return nullptr;
}

void append_phase(PhaseSummary& summary, const char* name,
                  const PhaseAgg& agg) {
  if (agg.count == 0) {
    return;
  }
  summary.push_back(PhaseStat{name, agg.count,
                              static_cast<double>(agg.us) * 1e-6, agg.words});
}

std::string phase_table(const PhaseSummary& summary) {
  std::ostringstream out;
  out << "phase            count       seconds   payload words\n";
  char line[128];
  for (const auto& stat : summary) {
    std::snprintf(line, sizeof(line), "%-14s %8llu %13.6f %15.0f\n",
                  stat.name.c_str(),
                  static_cast<unsigned long long>(stat.count), stat.seconds,
                  stat.payload_words);
    out << line;
  }
  return out.str();
}

struct TraceSession::ThreadBuffer {
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
  ~ThreadBuffer() {
    // The session singleton is intentionally leaked, so flushing from any
    // thread-exit order (including after main returns) is safe.
    TraceSession::global().flush_buffer(*this);
  }
};

TraceSession::TraceSession() : epoch_(std::chrono::steady_clock::now()) {
  TraceConfig env_config;
  if (const char* p = std::getenv("RCF_TRACE"); p != nullptr && *p != '\0') {
    env_config.trace_out = std::string(p) == "1" ? "rcf_trace.json" : p;
  }
  if (const char* p = std::getenv("RCF_TRACE_JSONL");
      p != nullptr && *p != '\0') {
    env_config.jsonl_out = p;
  }
  if (const char* p = std::getenv("RCF_METRICS"); p != nullptr && *p != '\0') {
    env_config.metrics_out = p;
  }
  if (!env_config.trace_out.empty() || !env_config.jsonl_out.empty() ||
      !env_config.metrics_out.empty()) {
    start(env_config);
    std::atexit([] { TraceSession::global().write_outputs(); });
  }
}

TraceSession& TraceSession::global() {
  static TraceSession* session = new TraceSession();
  return *session;
}

TraceSession::ThreadBuffer& TraceSession::local_buffer() {
  thread_local ThreadBuffer buffer{
      {}, next_tid_.fetch_add(1, std::memory_order_relaxed)};
  return buffer;
}

void TraceSession::flush_buffer(ThreadBuffer& buffer) {
  if (buffer.events.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  store_.insert(store_.end(), buffer.events.begin(), buffer.events.end());
  buffer.events.clear();
}

void TraceSession::start(TraceConfig config) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    store_.clear();
    config_ = std::move(config);
  }
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceSession::stop() {
  enabled_.store(false, std::memory_order_relaxed);
  flush_buffer(local_buffer());
}

std::int64_t TraceSession::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceSession::record(const char* name, std::int64_t start_us,
                          std::int64_t dur_us, double words) {
  if (!enabled()) {
    return;
  }
  ThreadBuffer& buffer = local_buffer();
  buffer.events.push_back(
      TraceEvent{name, t_rank, buffer.tid, start_us, dur_us, words});
  if (buffer.events.size() >= kFlushThreshold) {
    flush_buffer(buffer);
  }
}

std::vector<TraceEvent> TraceSession::snapshot() {
  flush_buffer(local_buffer());
  std::lock_guard<std::mutex> lock(mutex_);
  return store_;
}

void TraceSession::clear() {
  local_buffer().events.clear();
  std::lock_guard<std::mutex> lock(mutex_);
  store_.clear();
}

std::uint64_t TraceSession::count_spans(std::string_view name) {
  std::uint64_t n = 0;
  for (const auto& ev : snapshot()) {
    if (name == ev.name) {
      ++n;
    }
  }
  return n;
}

void TraceSession::write_chrome_trace(std::ostream& out) {
  const auto events = snapshot();
  std::string body;
  body.reserve(events.size() * 96 + 64);
  body += "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) {
      body += ",\n";
    }
    append_event_json(events[i], /*chrome=*/true, body);
  }
  body += "],\"displayTimeUnit\":\"ms\"}\n";
  out << body;
}

void TraceSession::write_jsonl(std::ostream& out) {
  std::string line;
  for (const auto& ev : snapshot()) {
    line.clear();
    append_event_json(ev, /*chrome=*/false, line);
    line += "\n";
    out << line;
  }
}

bool TraceSession::write_outputs() {
  TraceConfig config;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    config = config_;
  }
  bool ok = true;
  if (!config.trace_out.empty()) {
    std::ofstream out(config.trace_out);
    if (out) {
      write_chrome_trace(out);
    } else {
      ok = false;
    }
  }
  if (!config.jsonl_out.empty()) {
    std::ofstream out(config.jsonl_out);
    if (out) {
      write_jsonl(out);
    } else {
      ok = false;
    }
  }
  if (!config.metrics_out.empty()) {
    ok = MetricsRegistry::global().write(config.metrics_out) && ok;
  }
  return ok;
}

ScopedSession::ScopedSession(std::string trace_out, std::string jsonl_out,
                             std::string metrics_out) {
  if (trace_out.empty() && jsonl_out.empty() && metrics_out.empty()) {
    return;
  }
  TraceSession::global().start(TraceConfig{
      std::move(trace_out), std::move(jsonl_out), std::move(metrics_out)});
  active_ = true;
}

ScopedSession::~ScopedSession() {
  if (!active_) {
    return;
  }
  auto& session = TraceSession::global();
  session.stop();
  if (!session.write_outputs()) {
    std::fprintf(stderr, "[rcf] warning: could not write trace outputs\n");
  }
}

TraceScope::~TraceScope() {
  if (!active_) {
    return;
  }
  auto& session = TraceSession::global();
  const std::int64_t end_us = session.now_us();
  session.record(name_, start_us_, end_us - start_us_, words_);
  if (latency_ != nullptr) {
    latency_->observe(static_cast<double>(end_us - start_us_));
  }
}

}  // namespace rcf::obs
