// Live telemetry bus: lock-free per-thread SPSC rings that the hot paths
// (engine phases, exec::Pool slices, every Communicator collective, the
// retry/fault decorators) publish fixed-size events into, drained by the
// obs::LiveMonitor sampler thread (live.hpp).
//
// Design constraints (see DESIGN.md "Live telemetry & health watchdog"):
//
//  * When live monitoring is off, telemetry_publish() costs exactly one
//    relaxed atomic load + branch (verified by BM_TelemetryPublishOff in
//    bench_kernels) -- the solvers stay instrumented unconditionally.
//  * Producers never block and never allocate: each thread owns one
//    single-producer / single-consumer ring; when it is full the event is
//    dropped and a drop counter incremented (the watchdog surfaces drops
//    as a ring-overflow alert, so saturation is observable, not silent).
//  * Events are fixed-size POD.  Labels are `const char*` to static
//    storage (string literals), exactly like TraceEvent::name, so no
//    ownership crosses the ring.
//
// The trace and live gates are packed into one atomic word (obs_gate) so
// TraceScope can test both with a single relaxed load -- enabling live
// telemetry did not add a second load to the disabled-span fast path.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace rcf::obs {

/// What a telemetry event describes.  The (a, b, c) payload is
/// kind-specific:
///
///   kPhase            engine solver phase    a=dur_us  b=words
///   kSpan             completed TraceScope   a=dur_us  b=words
///   kCollectiveBegin  collective posted      a=seq     b=words
///   kCollectiveEnd    collective completed   a=seq     b=dur_us
///   kProgress         solver iteration       a=iter    b=objective c=step
///   kRetry            collective retried     a=retry#  b=backoff_us
///   kFault            injected fault fired   a=call#
enum class TelemetryKind : std::uint16_t {
  kPhase = 0,
  kSpan,
  kCollectiveBegin,
  kCollectiveEnd,
  kProgress,
  kRetry,
  kFault,
};

[[nodiscard]] const char* telemetry_kind_name(TelemetryKind kind);

/// One fixed-size telemetry event (48 bytes).
struct TelemetryEvent {
  TelemetryKind kind = TelemetryKind::kSpan;
  std::uint16_t pad = 0;
  std::int32_t rank = 0;      ///< obs::thread_rank() at publish time
  std::int64_t t_us = 0;      ///< microseconds since the live epoch
  const char* label = "";     ///< static-storage label
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
};

/// Lock-free single-producer / single-consumer ring of TelemetryEvents.
/// try_push (producer side) and drain (consumer side) may race with each
/// other but not with themselves.  A full ring drops the event and counts
/// it instead of blocking the producer.
class TelemetryRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  /// `capacity` is rounded up to a power of two (>= 2).
  explicit TelemetryRing(std::size_t capacity = kDefaultCapacity);

  /// Producer side: false (and one drop counted) when the ring is full.
  bool try_push(const TelemetryEvent& ev) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= slots_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[static_cast<std::size_t>(tail) & mask_] = ev;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: appends every pending event to `out` in push order and
  /// returns how many were drained.
  std::size_t drain(std::vector<TelemetryEvent>& out);

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  /// Events dropped because the ring was full (monotonic).
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Approximate pending-event count (racy; exact when quiescent).
  [[nodiscard]] std::size_t size() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

 private:
  std::vector<TelemetryEvent> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};  ///< consumer position
  std::atomic<std::uint64_t> tail_{0};  ///< producer position
  std::atomic<std::uint64_t> dropped_{0};
};

namespace detail {

/// Combined observability gate: bit 0 = trace session enabled, bit 1 =
/// live telemetry enabled.  One relaxed load tests both.
inline constexpr std::uint32_t kGateTrace = 1u;
inline constexpr std::uint32_t kGateLive = 2u;
extern std::atomic<std::uint32_t> g_obs_gate;

void set_gate_bit(std::uint32_t bit, bool on);

}  // namespace detail

/// Both gate bits with one relaxed load (TraceScope's fast path).
[[nodiscard]] inline std::uint32_t obs_gate() {
  return detail::g_obs_gate.load(std::memory_order_relaxed);
}

/// True when the LiveMonitor is running and events should be published.
[[nodiscard]] inline bool live_enabled() {
  return (obs_gate() & detail::kGateLive) != 0;
}

/// Microseconds since the live epoch (process-stable steady clock).
[[nodiscard]] std::int64_t live_now_us();

/// Out-of-line publish path: stamps rank + timestamp and pushes into the
/// calling thread's ring.  Only call when live_enabled().
void telemetry_publish_slow(TelemetryKind kind, const char* label,
                            double a = 0.0, double b = 0.0, double c = 0.0);

/// Publishes one event into the calling thread's ring.  One relaxed load +
/// branch when live monitoring is off.
inline void telemetry_publish(TelemetryKind kind, const char* label,
                              double a = 0.0, double b = 0.0, double c = 0.0) {
  if (!live_enabled()) {
    return;
  }
  telemetry_publish_slow(kind, label, a, b, c);
}

/// Consumer API (LiveMonitor / tests): drains every registered per-thread
/// ring into `out` (append; unordered across threads) and returns the
/// number of events drained.  Rings of exited threads are drained one last
/// time and then retired.
std::size_t telemetry_drain(std::vector<TelemetryEvent>& out);

/// Total events dropped across all rings, including retired ones
/// (monotonic since telemetry_reset).
[[nodiscard]] std::uint64_t telemetry_dropped();

/// Drops pending events and zeroes the drop counters (LiveMonitor::start).
void telemetry_reset();

}  // namespace rcf::obs
