// Per-iteration convergence telemetry.
//
// Solvers push one ConvergenceRecord per (outer) iteration into a bounded
// ring buffer on SolveResult, independent of `track_history` (the full
// IterationRecord history carries cost counters and can be large; this
// ring is the cheap always-available convergence trace for rcf-report and
// the --conv-out bench export).  When more than `capacity` records are
// pushed the oldest are dropped; total_pushed() reports how many were
// offered so readers can detect truncation.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rcf::obs {

/// One convergence sample.  Fields the solver does not track for an
/// iteration are NaN (e.g. the engine only evaluates the objective on
/// history strides; grad_norm is the norm of the last gradient estimate,
/// exact for prox-Newton, stochastic for the engine).
struct ConvergenceRecord {
  std::uint64_t iteration = 0;
  double objective = std::nan("");
  double grad_norm = std::nan("");
  double support = std::nan("");  ///< nnz(w) after the prox step
  double step = std::nan("");     ///< ||w_t - w_{t-1}||_2
};

/// Fixed-capacity ring of ConvergenceRecords (drop-oldest).
class ConvergenceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit ConvergenceRing(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void push(const ConvergenceRecord& record) {
    if (records_.size() < capacity_) {
      records_.push_back(record);
    } else {
      records_[head_] = record;
      head_ = (head_ + 1) % capacity_;
    }
    ++total_pushed_;
  }

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Records offered over the ring's lifetime (>= size() once full).
  [[nodiscard]] std::uint64_t total_pushed() const { return total_pushed_; }

  /// Records in push order, oldest first.
  [[nodiscard]] std::vector<ConvergenceRecord> ordered() const {
    std::vector<ConvergenceRecord> out;
    out.reserve(records_.size());
    for (std::size_t i = 0; i < records_.size(); ++i) {
      out.push_back(records_[(head_ + i) % records_.size()]);
    }
    return out;
  }

  void clear() {
    records_.clear();
    head_ = 0;
    total_pushed_ = 0;
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< index of the oldest record once full
  std::uint64_t total_pushed_ = 0;
  std::vector<ConvergenceRecord> records_;
};

}  // namespace rcf::obs
