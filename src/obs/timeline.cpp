#include "obs/timeline.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

#include "obs/trace.hpp"

namespace rcf::obs {

namespace {

// Wait spans that nest inside a collective span on the same rank (the
// collective's duration already contains them, so the decomposition must
// not count them twice).
bool is_nested_wait(const std::string& name) {
  return name == "allreduce_wait" || name == "reduce_wait";
}

// The publish-rendezvous wait: its start is the moment the rank arrived at
// the collective, which is the signal straggler attribution is built on.
bool is_arrival_wait(const std::string& name) {
  return name == "allreduce_wait";
}

}  // namespace

SpanCategory classify_span(const std::string& name) {
  if (name == "allreduce" || name == "broadcast" || name == "allgather") {
    return SpanCategory::kComm;
  }
  if (is_nested_wait(name) || name == "barrier_wait") {
    return SpanCategory::kWait;
  }
  if (name == "aux_collective" || name == "aux_wait") {
    return SpanCategory::kAux;
  }
  return SpanCategory::kCompute;
}

bool is_aligned_collective(const std::string& name) {
  return classify_span(name) == SpanCategory::kComm || name == "barrier_wait";
}

std::int64_t CollectiveInstance::end_max_us() const {
  std::int64_t end = 0;
  for (const RankEntry& e : ranks) {
    if (e.present) {
      end = std::max(end, e.end_us);
    }
  }
  return end;
}

int Timeline::rank_index(int rank) const {
  const auto it = std::lower_bound(ranks_.begin(), ranks_.end(), rank);
  if (it == ranks_.end() || *it != rank) {
    return -1;
  }
  return static_cast<int>(it - ranks_.begin());
}

Timeline Timeline::build(std::vector<TimelineSpan> spans) {
  Timeline t;
  if (spans.empty()) {
    return t;
  }
  std::sort(spans.begin(), spans.end(),
            [](const TimelineSpan& a, const TimelineSpan& b) {
              return a.rank != b.rank ? a.rank < b.rank
                                      : a.start_us < b.start_us;
            });

  for (const TimelineSpan& s : spans) {
    if (t.ranks_.empty() || t.ranks_.back() != s.rank) {
      t.ranks_.push_back(s.rank);
    }
  }

  // -- per-rank decomposition ----------------------------------------------
  t.rank_times_.resize(t.ranks_.size());
  t.start_us_ = std::numeric_limits<std::int64_t>::max();
  t.end_us_ = std::numeric_limits<std::int64_t>::min();
  for (const TimelineSpan& s : spans) {
    RankTimes& rt = t.rank_times_[static_cast<std::size_t>(
        t.rank_index(s.rank))];
    if (rt.spans == 0) {
      rt.rank = s.rank;
      rt.first_us = s.start_us;
      rt.last_us = s.end_us();
    }
    ++rt.spans;
    rt.first_us = std::min(rt.first_us, s.start_us);
    rt.last_us = std::max(rt.last_us, s.end_us());
    t.start_us_ = std::min(t.start_us_, s.start_us);
    t.end_us_ = std::max(t.end_us_, s.end_us());
    const double secs = static_cast<double>(s.dur_us) * 1e-6;
    switch (classify_span(s.name)) {
      case SpanCategory::kComm:
        rt.comm_s += secs;
        break;
      case SpanCategory::kWait:
        rt.wait_s += secs;
        if (is_nested_wait(s.name)) {
          rt.comm_s -= secs;  // contained in the collective span
        }
        break;
      case SpanCategory::kAux:
        if (s.name != "aux_wait") {  // aux_wait nests inside aux_collective
          rt.aux_s += secs;
        }
        break;
      case SpanCategory::kCompute:
        rt.compute_s += secs;
        break;
    }
  }
  for (RankTimes& rt : t.rank_times_) {
    rt.comm_s = std::max(rt.comm_s, 0.0);
  }

  // -- collective alignment -------------------------------------------------
  // Key = stamped sequence number when every collective span carries one,
  // else the per-rank arrival ordinal (the SPMD schedule is identical on
  // every rank, so the i-th collective is the same collective everywhere).
  bool all_stamped = true;
  bool any_collective = false;
  for (const TimelineSpan& s : spans) {
    if (is_aligned_collective(s.name)) {
      any_collective = true;
      if (s.seq < 0) {
        all_stamped = false;
      }
    }
  }
  if (!any_collective) {
    return t;
  }
  std::map<std::int64_t, CollectiveInstance> instances;
  std::vector<std::int64_t> ordinal(t.ranks_.size(), 0);
  // Spans are (rank, start)-sorted, so the ordinal fallback counts each
  // rank's collectives in arrival order.
  for (const TimelineSpan& s : spans) {
    if (!is_aligned_collective(s.name)) {
      continue;
    }
    const auto ri = static_cast<std::size_t>(t.rank_index(s.rank));
    const std::int64_t key = all_stamped ? s.seq : ordinal[ri]++;
    CollectiveInstance& inst = instances[key];
    if (inst.ranks.empty()) {
      inst.name = s.name;
      inst.seq = key;
      inst.ranks.resize(t.ranks_.size());
      for (std::size_t i = 0; i < t.ranks_.size(); ++i) {
        inst.ranks[i].rank = t.ranks_[i];
      }
    }
    CollectiveInstance::RankEntry& entry = inst.ranks[ri];
    entry.present = true;
    entry.start_us = s.start_us;
    entry.end_us = s.end_us();
    // barrier_wait has no nested wait span: the whole span is the wait and
    // its start is the arrival.
    entry.arrival_us = s.start_us;
    if (s.name == "barrier_wait") {
      entry.wait_us = s.dur_us;
    }
    inst.words = std::max(inst.words, s.words);
  }

  // Attach the nested publish waits: by sequence number when stamped, by
  // containment in the rank's collective span otherwise.
  for (const TimelineSpan& s : spans) {
    if (!is_arrival_wait(s.name)) {
      continue;
    }
    const auto ri = static_cast<std::size_t>(t.rank_index(s.rank));
    CollectiveInstance* inst = nullptr;
    if (all_stamped && s.seq >= 0) {
      const auto it = instances.find(s.seq);
      if (it != instances.end()) {
        inst = &it->second;
      }
    } else {
      for (auto& [key, candidate] : instances) {
        const CollectiveInstance::RankEntry& e = candidate.ranks[ri];
        if (e.present && e.start_us <= s.start_us && s.end_us() <= e.end_us) {
          inst = &candidate;
          break;
        }
      }
    }
    if (inst == nullptr || !inst->ranks[ri].present) {
      continue;
    }
    CollectiveInstance::RankEntry& entry = inst->ranks[ri];
    entry.wait_us += s.dur_us;
    entry.arrival_us = s.start_us;  // waiting began on arrival
  }

  // Straggler attribution per instance.
  t.collectives_.reserve(instances.size());
  for (auto& [key, inst] : instances) {
    std::int64_t min_wait = std::numeric_limits<std::int64_t>::max();
    std::int64_t max_wait = 0;
    std::int64_t last_arrival = std::numeric_limits<std::int64_t>::min();
    int present = 0;
    for (const CollectiveInstance::RankEntry& e : inst.ranks) {
      if (!e.present) {
        continue;
      }
      ++present;
      min_wait = std::min(min_wait, e.wait_us);
      max_wait = std::max(max_wait, e.wait_us);
      inst.wait_total_us += e.wait_us;
      if (e.arrival_us > last_arrival) {
        last_arrival = e.arrival_us;
        inst.straggler_rank = e.rank;
      }
    }
    inst.last_arrival_us = present > 0 ? last_arrival : 0;
    inst.wait_imposed_us = present > 0 ? max_wait - min_wait : 0;
    if (present < 2) {
      inst.straggler_rank = -1;  // no one to make wait
    }
    t.collectives_.push_back(std::move(inst));
  }
  return t;
}

std::vector<TimelineSpan> to_timeline_spans(
    const std::vector<TraceEvent>& events) {
  std::vector<TimelineSpan> spans;
  spans.reserve(events.size());
  for (const TraceEvent& ev : events) {
    spans.push_back(TimelineSpan{ev.name, ev.rank, ev.seq, ev.start_us,
                                 ev.dur_us, ev.words});
  }
  return spans;
}

}  // namespace rcf::obs
