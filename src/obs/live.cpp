#include "obs/live.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <string_view>
#include <thread>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define RCF_LIVE_HAVE_UNIX_SOCKET 1
#endif

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace rcf::obs {

namespace {

int env_int(const char* name, int fallback) {
  const char* p = std::getenv(name);
  if (p == nullptr || *p == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long v = std::strtol(p, &end, 10);
  return end == p ? fallback : static_cast<int>(v);
}

/// Open-collective entries older than this are presumed to have lost their
/// end event (ring overflow) and are pruned rather than poisoning the
/// in-flight-age display forever.
constexpr std::int64_t kStaleOpenUs = 600'000'000;

/// Finite double as JSON number; NaN/Inf (not representable) as null.
void append_num(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

/// Occupancy classification of span/phase labels.  Spans that are neither
/// communication nor waiting (pool slices nested inside engine phases) are
/// left out of the occupancy split so nested spans never double-count.
bool is_comm_label(std::string_view label) {
  return label == "allreduce" || label == "allreduce_post" ||
         label == "broadcast" || label == "allgather" || label == "gather" ||
         label == "reduce" || label == "barrier";
}

bool is_wait_label(std::string_view label) {
  return label.ends_with("_wait") || label == "quiesce";
}

}  // namespace

struct LiveMonitor::Impl {
  mutable std::mutex mutex;
  std::condition_variable cv;
  bool running = false;
  bool stop_requested = false;
  std::thread sampler;  // rcf-analyze: allow(telemetry-discipline) sampler drains rings off the solver's critical path

  LiveConfig config;

  // -- stream sink --------------------------------------------------------
  std::ofstream file;
  int socket_fd = -1;
  bool sink_failed = false;

  // -- per-session fold state ---------------------------------------------
  struct RankState {
    std::uint64_t epoch = 0;
    std::int64_t last_progress_us = 0;
    double objective = std::nan("");
    double step = std::nan("");
    // Cumulative and per-window occupancy, microseconds.
    double compute_us = 0.0;
    double comm_us = 0.0;
    double wait_us = 0.0;
    double win_compute_us = 0.0;
    double win_comm_us = 0.0;
    double win_wait_us = 0.0;
    std::uint64_t events = 0;
    std::uint64_t collectives = 0;
  };
  struct OpenCollective {
    std::int64_t begin_us = 0;
    double words = 0.0;
  };

  std::map<int, RankState> ranks;
  std::map<std::pair<int, std::int64_t>, OpenCollective> open;
  Watchdog watchdog;
  MetricsSnapshot prev_metrics;
  std::uint64_t drops_base = 0;
  std::uint64_t retries_total = 0;
  std::uint64_t faults_total = 0;
  std::uint64_t sample_index = 0;
  std::uint64_t prev_max_epoch = 0;
  std::int64_t session_start_us = 0;
  std::int64_t prev_t_us = 0;
  std::int64_t busy_total_us = 0;

  // -- retained alerts (bounded; session indices are monotonic) -----------
  std::deque<Alert> alerts;
  std::uint64_t alerts_evicted = 0;

  // scratch (reused across samples to avoid per-pass allocation)
  std::vector<TelemetryEvent> events;
  std::vector<ConvergenceRecord> conv_scratch;
};

namespace {

void open_sink(LiveMonitor::Impl& im) {
  im.sink_failed = false;
  const std::string& out = im.config.out;
  if (out.empty()) {
    return;
  }
  if (out.rfind("unix:", 0) == 0) {
    const std::string path = out.substr(5);
#ifdef RCF_LIVE_HAVE_UNIX_SOCKET
    im.socket_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (im.socket_fd >= 0) {
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
      if (::connect(im.socket_fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) != 0) {
        ::close(im.socket_fd);
        im.socket_fd = -1;
      }
    }
    if (im.socket_fd < 0) {
      std::fprintf(stderr,
                   "rcf: live monitor could not connect to socket %s; "
                   "streaming disabled\n",
                   path.c_str());
      im.sink_failed = true;
    }
#else
    std::fprintf(stderr,
                 "rcf: unix-socket live streams are not supported on this "
                 "platform (%s); streaming disabled\n",
                 path.c_str());
    im.sink_failed = true;
#endif
    return;
  }
  im.file.open(out, std::ios::out | std::ios::trunc);
  if (!im.file) {
    std::fprintf(stderr,
                 "rcf: live monitor could not open %s; streaming disabled\n",
                 out.c_str());
    im.sink_failed = true;
  }
}

void close_sink(LiveMonitor::Impl& im) {
  if (im.file.is_open()) {
    im.file.close();
  }
#ifdef RCF_LIVE_HAVE_UNIX_SOCKET
  if (im.socket_fd >= 0) {
    ::close(im.socket_fd);
    im.socket_fd = -1;
  }
#endif
}

/// Writes one record with the `<decimal byte length>\t<json>\n` framing.
void write_record(LiveMonitor::Impl& im, const std::string& json) {
  if (im.sink_failed) {
    return;
  }
  std::string frame;
  frame.reserve(json.size() + 16);
  append_u64(frame, json.size());
  frame += '\t';
  frame += json;
  frame += '\n';
#ifdef RCF_LIVE_HAVE_UNIX_SOCKET
  if (im.socket_fd >= 0) {
    const char* p = frame.data();
    std::size_t left = frame.size();
    while (left > 0) {
      const ssize_t n = ::send(im.socket_fd, p, left, 0);
      if (n <= 0) {
        ::close(im.socket_fd);
        im.socket_fd = -1;
        im.sink_failed = true;
        return;
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    return;
  }
#endif
  if (im.file.is_open()) {
    im.file << frame;
    im.file.flush();  // tailers (rcf-top) read mid-run
    if (!im.file) {
      im.sink_failed = true;
    }
  }
}

std::string header_json(const LiveMonitor::Impl& im) {
  const WatchdogConfig& w = im.config.watchdog;
  std::string out = "{\"type\":\"header\",\"version\":1,\"t_us\":";
  append_i64(out, im.session_start_us);
  out += ",\"period_ms\":";
  append_i64(out, im.config.period_ms);
  out += ",\"watchdog\":{\"stall_window\":";
  append_i64(out, w.stall_window);
  out += ",\"stall_rel_improvement\":";
  append_num(out, w.stall_rel_improvement);
  out += ",\"divergence_factor\":";
  append_num(out, w.divergence_factor);
  out += ",\"straggler_epochs\":";
  append_u64(out, w.straggler_epochs);
  out += ",\"straggler_grace_us\":";
  append_i64(out, w.straggler_grace_us);
  out += ",\"retry_storm\":";
  append_u64(out, w.retry_storm);
  out += "}}";
  return out;
}

void fold_event(LiveMonitor::Impl& im, const TelemetryEvent& ev,
                std::int64_t now_us) {
  auto [it, inserted] = im.ranks.try_emplace(ev.rank);
  LiveMonitor::Impl::RankState& rs = it->second;
  if (inserted) {
    rs.last_progress_us = im.session_start_us;
  }
  ++rs.events;
  const std::string_view label = ev.label;
  switch (ev.kind) {
    case TelemetryKind::kPhase:
      if (is_comm_label(label)) {
        rs.comm_us += ev.a;
        rs.win_comm_us += ev.a;
      } else {
        rs.compute_us += ev.a;
        rs.win_compute_us += ev.a;
      }
      break;
    case TelemetryKind::kSpan:
      if (is_wait_label(label)) {
        rs.wait_us += ev.a;
        rs.win_wait_us += ev.a;
      } else if (is_comm_label(label)) {
        rs.comm_us += ev.a;
        rs.win_comm_us += ev.a;
      }
      break;
    case TelemetryKind::kCollectiveBegin:
      ++rs.collectives;
      // emplace keeps the earliest begin when a posted collective's wait
      // span re-announces the same sequence number.
      im.open.emplace(
          std::make_pair(ev.rank, static_cast<std::int64_t>(ev.a)),
          LiveMonitor::Impl::OpenCollective{ev.t_us, ev.b});
      break;
    case TelemetryKind::kCollectiveEnd:
      im.open.erase(
          std::make_pair(ev.rank, static_cast<std::int64_t>(ev.a)));
      break;
    case TelemetryKind::kProgress: {
      const auto iter = static_cast<std::uint64_t>(ev.a);
      rs.epoch = std::max(rs.epoch, iter);
      rs.last_progress_us = std::max(rs.last_progress_us, ev.t_us);
      rs.objective = ev.b;
      rs.step = ev.c;
      // The watchdog's convergence rules follow rank 0's series (the
      // sequential engine publishes everything as rank 0; the distributed
      // engine's chunks do not evaluate the global objective).
      if (ev.rank == 0) {
        ConvergenceRecord rec;
        rec.iteration = iter;
        rec.objective = ev.b;
        rec.step = ev.c;
        im.conv_scratch.push_back(rec);
      }
      break;
    }
    case TelemetryKind::kRetry:
      ++im.retries_total;
      break;
    case TelemetryKind::kFault:
      ++im.faults_total;
      break;
  }
  (void)now_us;
}

std::string snapshot_json(const LiveMonitor::Impl& im, const HealthSample& hs,
                          const MetricsSnapshot& delta, std::size_t drained,
                          std::uint64_t max_epoch, double iters_per_s,
                          std::size_t inflight, std::int64_t inflight_age_us) {
  std::string out;
  out.reserve(512 + im.ranks.size() * 192);
  out += "{\"type\":\"snapshot\",\"n\":";
  append_u64(out, im.sample_index);
  out += ",\"t_us\":";
  append_i64(out, hs.t_us);
  out += ",\"epoch\":";
  append_u64(out, max_epoch);
  out += ",\"iters_per_s\":";
  append_num(out, iters_per_s);
  // Whole-run communication fraction over this window (wait counts as
  // communication: time the solver is blocked on the fabric).
  double wc = 0.0, wm = 0.0, ww = 0.0;
  for (const auto& [rank, rs] : im.ranks) {
    wc += rs.win_compute_us;
    wm += rs.win_comm_us;
    ww += rs.win_wait_us;
  }
  const double busy = wc + wm + ww;
  out += ",\"comm_frac\":";
  append_num(out, busy > 0.0 ? (wm + ww) / busy : 0.0);
  out += ",\"inflight\":{\"count\":";
  append_u64(out, inflight);
  out += ",\"max_age_us\":";
  append_i64(out, inflight_age_us);
  out += "},\"events\":";
  append_u64(out, drained);
  out += ",\"retries\":";
  append_u64(out, hs.retries_total);
  out += ",\"faults\":";
  append_u64(out, hs.faults_total);
  out += ",\"drops\":";
  append_u64(out, hs.drops_total);
  out += ",\"alerts\":";
  append_u64(out, im.alerts_evicted + im.alerts.size());
  out += ",\"ranks\":[";
  bool first = true;
  for (const auto& [rank, rs] : im.ranks) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"rank\":";
    append_i64(out, rank);
    out += ",\"epoch\":";
    append_u64(out, rs.epoch);
    out += ",\"idle_us\":";
    append_i64(out, std::max<std::int64_t>(0, hs.t_us - rs.last_progress_us));
    out += ",\"objective\":";
    append_num(out, rs.objective);
    out += ",\"step\":";
    append_num(out, rs.step);
    const double rbusy = rs.win_compute_us + rs.win_comm_us + rs.win_wait_us;
    out += ",\"frac\":{\"compute\":";
    append_num(out, rbusy > 0.0 ? rs.win_compute_us / rbusy : 0.0);
    out += ",\"comm\":";
    append_num(out, rbusy > 0.0 ? rs.win_comm_us / rbusy : 0.0);
    out += ",\"wait\":";
    append_num(out, rbusy > 0.0 ? rs.win_wait_us / rbusy : 0.0);
    out += "},\"busy_us\":{\"compute\":";
    append_num(out, rs.compute_us);
    out += ",\"comm\":";
    append_num(out, rs.comm_us);
    out += ",\"wait\":";
    append_num(out, rs.wait_us);
    out += "},\"collectives\":";
    append_u64(out, rs.collectives);
    out += '}';
  }
  out += "],\"counters\":{";
  first = true;
  for (const auto& [name, value] : delta.counters) {
    if (value == 0) {
      continue;  // only instruments that moved this window
    }
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":";
    append_u64(out, value);
  }
  out += "}}";
  return out;
}

}  // namespace

LiveMonitor::LiveMonitor() : impl_(new Impl()) {}

LiveMonitor& LiveMonitor::global() {
  static LiveMonitor* monitor = new LiveMonitor();
  return *monitor;
}

namespace {

/// One full sampling pass.  Caller holds im.mutex.
void sample_locked(LiveMonitor::Impl& im) {
  const std::int64_t t0 = live_now_us();
  im.events.clear();
  const std::size_t drained = telemetry_drain(im.events);
  // Rings are per-thread, so the merged batch is unordered across
  // producers; sort by timestamp so last-write-wins folds (objective,
  // step) and the watchdog's convergence series are deterministic.
  std::stable_sort(im.events.begin(), im.events.end(),
                   [](const TelemetryEvent& x, const TelemetryEvent& y) {
                     return x.t_us < y.t_us;
                   });
  im.conv_scratch.clear();
  for (auto& [rank, rs] : im.ranks) {
    rs.win_compute_us = 0.0;
    rs.win_comm_us = 0.0;
    rs.win_wait_us = 0.0;
  }
  const std::int64_t now = live_now_us();
  for (const TelemetryEvent& ev : im.events) {
    fold_event(im, ev, now);
  }
  // In-flight collectives: age of the oldest open span; prune entries that
  // lost their end event to ring overflow.
  std::size_t inflight = 0;
  std::int64_t inflight_age_us = 0;
  for (auto it = im.open.begin(); it != im.open.end();) {
    const std::int64_t age = now - it->second.begin_us;
    if (age > kStaleOpenUs) {
      it = im.open.erase(it);
      continue;
    }
    ++inflight;
    inflight_age_us = std::max(inflight_age_us, age);
    ++it;
  }

  HealthSample hs;
  hs.t_us = now;
  std::uint64_t max_epoch = 0;
  for (const auto& [rank, rs] : im.ranks) {
    RankHealth rh;
    rh.rank = rank;
    rh.epoch = rs.epoch;
    rh.idle_us = std::max<std::int64_t>(0, now - rs.last_progress_us);
    hs.ranks.push_back(rh);
    max_epoch = std::max(max_epoch, rs.epoch);
  }
  hs.conv = im.conv_scratch;
  hs.retries_total = im.retries_total;
  hs.faults_total = im.faults_total;
  hs.drops_total = telemetry_dropped() - im.drops_base;

  const std::vector<Alert> alerts = im.watchdog.on_sample(hs);

  MetricsSnapshot cur = MetricsRegistry::global().snapshot();
  const MetricsSnapshot delta = delta_snapshot(im.prev_metrics, cur);
  im.prev_metrics = std::move(cur);

  const double dt_s =
      static_cast<double>(now - im.prev_t_us) / 1e6;
  const double iters_per_s =
      dt_s > 0.0 && max_epoch >= im.prev_max_epoch
          ? static_cast<double>(max_epoch - im.prev_max_epoch) / dt_s
          : 0.0;

  write_record(im, snapshot_json(im, hs, delta, drained, max_epoch,
                                 iters_per_s, inflight, inflight_age_us));

  MetricsRegistry& registry = MetricsRegistry::global();
  for (const Alert& alert : alerts) {
    write_record(im, alert_json(alert));
    im.alerts.push_back(alert);
    if (im.alerts.size() > LiveMonitor::kMaxAlerts) {
      im.alerts.pop_front();
      ++im.alerts_evicted;
    }
    registry.counter("health.alerts").add(1);
    registry.counter(std::string("health.alert.") +
                     alert_kind_name(alert.kind))
        .add(1);
  }

  const std::int64_t busy = live_now_us() - t0;
  im.busy_total_us += busy;
  registry.counter("live.samples").add(1);
  registry.counter("live.events").add(drained);
  registry.counter("live.sampler.busy_us").add(
      static_cast<std::uint64_t>(busy));
  registry.gauge("live.drops").set(static_cast<double>(hs.drops_total));

  ++im.sample_index;
  im.prev_t_us = now;
  im.prev_max_epoch = max_epoch;
}

void sampler_loop(LiveMonitor::Impl& im) {
  std::unique_lock<std::mutex> lock(im.mutex);
  while (!im.stop_requested) {
    im.cv.wait_for(lock, std::chrono::milliseconds(im.config.period_ms),
                   [&im] { return im.stop_requested; });
    if (im.stop_requested) {
      break;
    }
    sample_locked(im);
  }
}

}  // namespace

bool LiveMonitor::start(LiveConfig config) {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mutex);
  if (im.running) {
    return false;
  }
  if (config.period_ms <= 0) {
    config.period_ms = 1;
  }
  im.config = std::move(config);

  telemetry_reset();
  // Live rings' drop counters survive reset (they race their producers);
  // report deltas against the start-of-session value instead.
  im.drops_base = telemetry_dropped();
  im.ranks.clear();
  im.open.clear();
  im.retries_total = 0;
  im.faults_total = 0;
  im.watchdog = Watchdog(im.config.watchdog);
  im.prev_metrics = MetricsRegistry::global().snapshot();
  im.sample_index = 0;
  im.prev_max_epoch = 0;
  im.session_start_us = live_now_us();
  im.prev_t_us = im.session_start_us;
  im.busy_total_us = 0;
  im.alerts.clear();
  im.alerts_evicted = 0;

  open_sink(im);
  write_record(im, header_json(im));

  im.stop_requested = false;
  im.running = true;
  detail::set_gate_bit(detail::kGateLive, true);
  im.sampler = std::thread([&im] { sampler_loop(im); });  // rcf-analyze: allow(telemetry-discipline) background sampler, joined in stop()
  return true;
}

void LiveMonitor::stop() {
  Impl& im = *impl_;
  std::thread worker;  // rcf-analyze: allow(telemetry-discipline) join handle moved out of the lock
  {
    std::lock_guard<std::mutex> lock(im.mutex);
    if (!im.running || im.stop_requested) {
      return;
    }
    // Close the gate first so producers stop publishing; the final sample
    // below drains whatever made it into the rings.
    detail::set_gate_bit(detail::kGateLive, false);
    im.stop_requested = true;
    worker = std::move(im.sampler);
  }
  im.cv.notify_all();
  if (worker.joinable()) {
    worker.join();
  }
  std::lock_guard<std::mutex> lock(im.mutex);
  sample_locked(im);
  close_sink(im);
  im.running = false;
}

bool LiveMonitor::running() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->running;
}

void LiveMonitor::sample_now() {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mutex);
  if (!im.running) {
    return;
  }
  sample_locked(im);
}

std::uint64_t LiveMonitor::alert_count() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->alerts_evicted + impl_->alerts.size();
}

std::vector<Alert> LiveMonitor::alerts_since(std::uint64_t mark) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<Alert> out;
  const std::uint64_t base = impl_->alerts_evicted;
  for (std::size_t i = 0; i < impl_->alerts.size(); ++i) {
    if (base + i >= mark) {
      out.push_back(impl_->alerts[i]);
    }
  }
  return out;
}

WatchdogConfig LiveMonitor::watchdog_config() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->running ? impl_->config.watchdog : WatchdogConfig{};
}

ScopedLive::ScopedLive(std::string out, int period_ms) {
  if (out.empty()) {
    return;
  }
  LiveConfig config;
  config.out = std::move(out);
  config.period_ms =
      period_ms > 0 ? period_ms : env_int("RCF_LIVE_PERIOD_MS", 250);
  config.watchdog = watchdog_config_from_env();
  active_ = LiveMonitor::global().start(config);
}

ScopedLive::~ScopedLive() {
  if (active_) {
    LiveMonitor::global().stop();
  }
}

void live_autoconfigure_from_env() {
  static const bool configured = [] {
    const char* env = std::getenv("RCF_LIVE");
    if (env == nullptr || *env == '\0' || std::strcmp(env, "0") == 0) {
      return false;
    }
    LiveConfig config;
    config.out = std::strcmp(env, "1") == 0 ? "rcf_live.jsonl" : env;
    config.period_ms = env_int("RCF_LIVE_PERIOD_MS", config.period_ms);
    config.watchdog = watchdog_config_from_env();
    if (LiveMonitor::global().start(config)) {
      std::atexit([] { LiveMonitor::global().stop(); });
      return true;
    }
    return false;
  }();
  (void)configured;
}

}  // namespace rcf::obs
