// Synthetic dataset generation, including clones of the paper's Table 2
// benchmarks.
//
// The original LIBSVM datasets are not redistributable inside this repo (and
// SUSY/epsilon are multi-GB), so each benchmark is substituted by a
// generator that reproduces the properties the algorithms interact with:
// sample count m, feature count d, non-zero fill f, and a planted sparse
// linear model so that l1 regression is statistically meaningful.  See
// DESIGN.md "Substitutions".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace rcf::data {

/// Options for synthetic regression data.
struct SyntheticOptions {
  std::size_t num_samples = 1000;  ///< m
  std::size_t num_features = 50;   ///< d
  double density = 1.0;            ///< f, fill-in of X
  /// Fraction of features with non-zero ground-truth weight.
  double support_fraction = 0.3;
  /// Std-dev of additive label noise.
  double noise_stddev = 0.1;
  /// Ratio of the largest to smallest feature scale: column j of X is
  /// scaled by condition^(-j/(d-1)), spreading the Gram spectrum by
  /// ~condition^2.  Real benchmark datasets are ill-conditioned, which is
  /// what makes the solvers take the hundreds of iterations the paper
  /// reports; condition = 1 gives an (unrealistically easy) isotropic
  /// Gaussian design.
  double condition = 1.0;
  /// When true (and condition > 1), planted weights on the support are
  /// scaled by the inverse feature scale, so every supported feature
  /// contributes equally to the labels.  This puts objective mass into the
  /// low-curvature directions -- informative low-variance features, the
  /// regime where first-order solvers genuinely need many iterations (as on
  /// the paper's real datasets).  With false, weak features carry no signal
  /// and the lasso solution lives in the well-conditioned subspace.
  bool balanced_signal = true;
  /// Latent dimensionality r of the features: when > 0, each sample is
  /// x_i = B^T z_i with z_i ~ N(0, I_r) and a fixed d x r mixing B (the
  /// structural non-zeros are then filled from this low-rank field).
  /// Image/physics datasets (mnist, epsilon) have effective rank far below
  /// d, which is what makes subsampled Hessian estimates (mbar >= r)
  /// informative; 0 keeps independent entries (full rank ~ d).
  std::size_t latent_rank = 0;
  /// If true, labels are sign(x^T w* + noise) in {-1, +1} (classification
  /// benchmarks such as SUSY / covtype); otherwise real-valued.
  bool binary_labels = false;
  std::uint64_t seed = 42;
  std::string name = "synthetic";
};

/// Generates X^T (m x d, density f) and labels y = X^T w* + noise for a
/// planted w* with the requested support.
[[nodiscard]] Dataset make_regression(const SyntheticOptions& opts);

/// Shape metadata of one Table 2 benchmark.
struct PaperDatasetSpec {
  std::string name;
  std::size_t rows;    ///< samples m
  std::size_t cols;    ///< features d
  double density;      ///< percentage of nnz, as a fraction
  bool binary_labels;
  double lambda;       ///< the paper's tuned regularization (§5.1)
};

/// The five benchmarks of Table 2 with the paper's shapes and the tuned
/// lambda values of §5.1 (0.0001 for epsilon, 0.1 otherwise).
[[nodiscard]] const std::vector<PaperDatasetSpec>& paper_dataset_specs();

/// Looks up a spec by name; throws InvalidArgument if unknown.
[[nodiscard]] const PaperDatasetSpec& paper_dataset_spec(
    const std::string& name);

/// Generates a clone of the named benchmark ("abalone", "SUSY", "covtype",
/// "mnist", "epsilon") with rows scaled by `scale` (columns and density are
/// always preserved -- they drive the d^2 communication volume).
[[nodiscard]] Dataset make_paper_clone(const std::string& name,
                                       double scale = 1.0,
                                       std::uint64_t seed = 42);

/// Default row-scales that keep every benchmark runnable in seconds on one
/// core while preserving m >> d (overdetermined regime).
[[nodiscard]] double default_clone_scale(const std::string& name);

}  // namespace rcf::data
