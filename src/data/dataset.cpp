#include "data/dataset.hpp"

#include <cmath>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/table.hpp"

namespace rcf::data {

void Dataset::validate() const {
  RCF_CHECK_MSG(xt.rows() == y.size(),
                "dataset '" + name + "': label count != sample count");
  RCF_CHECK_MSG(xt.rows() > 0 && xt.cols() > 0,
                "dataset '" + name + "': empty shape");
}

void normalize_features(Dataset& dataset) {
  dataset.validate();
  const std::size_t m = dataset.num_samples();
  const std::size_t d = dataset.num_features();

  // Column 2-norms of X^T.
  std::vector<double> col_norm_sq(d, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const auto row = dataset.xt.row(r);
    for (std::size_t i = 0; i < row.nnz(); ++i) {
      col_norm_sq[row.cols[i]] += row.vals[i] * row.vals[i];
    }
  }
  std::vector<double> inv_norm(d, 1.0);
  for (std::size_t c = 0; c < d; ++c) {
    if (col_norm_sq[c] > 0.0) {
      inv_norm[c] = 1.0 / std::sqrt(col_norm_sq[c]);
    }
  }

  // Rebuild the CSR values in place via from_parts (values are mutable only
  // at construction; we copy the arrays).
  std::vector<std::size_t> row_ptr(dataset.xt.row_ptr().begin(),
                                   dataset.xt.row_ptr().end());
  std::vector<std::uint32_t> col_idx(dataset.xt.col_idx().begin(),
                                     dataset.xt.col_idx().end());
  std::vector<double> values(dataset.xt.values().begin(),
                             dataset.xt.values().end());
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] *= inv_norm[col_idx[i]];
  }
  dataset.xt = sparse::CsrMatrix::from_parts(m, d, std::move(row_ptr),
                                             std::move(col_idx),
                                             std::move(values));

  // Center the labels.
  double mean = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    mean += dataset.y[i];
  }
  mean /= static_cast<double>(m);
  for (std::size_t i = 0; i < m; ++i) {
    dataset.y[i] -= mean;
  }
}

std::string describe(const Dataset& dataset) {
  std::ostringstream os;
  os << dataset.name << ": m=" << dataset.num_samples()
     << " samples, d=" << dataset.num_features() << " features, nnz="
     << dataset.nnz() << " (density " << fmt_f(100.0 * dataset.density(), 2)
     << "%), " << fmt_bytes(dataset.size_bytes());
  if (dataset.scale != 1.0) {
    os << " [clone of " << dataset.paper_rows << "x" << dataset.paper_cols
       << " at scale " << fmt_g(dataset.scale, 3) << "]";
  }
  return os.str();
}

}  // namespace rcf::data
