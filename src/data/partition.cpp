#include "data/partition.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rcf::data {

Partition::Partition(std::size_t count, int parts) {
  RCF_CHECK_MSG(parts >= 1, "Partition: parts must be >= 1");
  const auto nparts = static_cast<std::size_t>(parts);
  offsets_.assign(nparts + 1, 0);
  const std::size_t base = count / nparts;
  const std::size_t extra = count % nparts;
  for (std::size_t p = 0; p < nparts; ++p) {
    offsets_[p + 1] = offsets_[p] + base + (p < extra ? 1 : 0);
  }
}

int Partition::owner(std::size_t i) const {
  RCF_CHECK_MSG(i < count(), "Partition::owner: index out of range");
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), i);
  return static_cast<int>(it - offsets_.begin()) - 1;
}

std::vector<std::span<const std::uint32_t>> Partition::split_sorted(
    std::span<const std::uint32_t> sorted_indices) const {
  std::vector<std::span<const std::uint32_t>> out;
  out.reserve(static_cast<std::size_t>(parts()));
  std::size_t pos = 0;
  for (int p = 0; p < parts(); ++p) {
    const std::size_t first = pos;
    while (pos < sorted_indices.size() && sorted_indices[pos] < end(p)) {
      RCF_DCHECK(sorted_indices[pos] >= begin(p));
      ++pos;
    }
    out.push_back(sorted_indices.subspan(first, pos - first));
  }
  RCF_CHECK_MSG(pos == sorted_indices.size(),
                "split_sorted: indices out of range or unsorted");
  return out;
}

}  // namespace rcf::data
