// Labelled dataset container.
//
// Follows the paper's convention: X in R^{d x m} with samples as columns;
// we hold the transpose X^T as CSR (m rows of d features) plus labels y.
#pragma once

#include <cstdint>
#include <string>

#include "la/vector.hpp"
#include "sparse/csr.hpp"

namespace rcf::data {

struct Dataset {
  std::string name;
  sparse::CsrMatrix xt;  ///< X^T: one row per sample.
  la::Vector y;          ///< one label per sample.

  /// Shape of the original benchmark this clone reproduces (Table 2); equal
  /// to the actual shape when scale == 1 or the data is not a clone.
  std::size_t paper_rows = 0;
  std::size_t paper_cols = 0;
  double paper_density = 1.0;
  /// Row scale factor actually used (rows = round(scale * paper_rows)).
  double scale = 1.0;

  [[nodiscard]] std::size_t num_samples() const { return xt.rows(); }  ///< m
  [[nodiscard]] std::size_t num_features() const { return xt.cols(); }  ///< d
  [[nodiscard]] std::size_t nnz() const { return xt.nnz(); }
  [[nodiscard]] double density() const { return xt.density(); }

  /// Bytes of the CSR payload (the paper's Table 2 "Size (nnz)" column).
  [[nodiscard]] std::size_t size_bytes() const { return xt.memory_bytes(); }

  /// Throws InvalidArgument if labels / matrix are inconsistent.
  void validate() const;
};

/// Centers y and scales each feature column of X^T to unit 2-norm (a common
/// preprocessing step for lasso; optional, never applied implicitly).
void normalize_features(Dataset& dataset);

/// One-line human-readable description.
[[nodiscard]] std::string describe(const Dataset& dataset);

}  // namespace rcf::data
