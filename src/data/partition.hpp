// Block partition of the sample dimension over P processors.
//
// The paper partitions X column-wise (by sample) and y row-wise (Fig. 1);
// rank p owns a contiguous block of samples.  The partition drives both the
// real SPMD execution (each ThreadComm rank slices its block) and the cost
// model's per-rank critical-path flop accounting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace rcf::data {

class Partition {
 public:
  Partition() = default;

  /// Splits [0, count) into `parts` contiguous blocks whose sizes differ by
  /// at most one.
  Partition(std::size_t count, int parts);

  [[nodiscard]] int parts() const { return static_cast<int>(offsets_.size()) - 1; }
  [[nodiscard]] std::size_t count() const { return offsets_.back(); }

  [[nodiscard]] std::size_t begin(int part) const {
    return offsets_[static_cast<std::size_t>(part)];
  }
  [[nodiscard]] std::size_t end(int part) const {
    return offsets_[static_cast<std::size_t>(part) + 1];
  }
  [[nodiscard]] std::size_t size(int part) const {
    return end(part) - begin(part);
  }

  /// Which part owns global index i.
  [[nodiscard]] int owner(std::size_t i) const;

  /// Splits a sorted global index list into per-part sub-spans.  The spans
  /// view `sorted_indices`; entry p covers the indices owned by part p.
  [[nodiscard]] std::vector<std::span<const std::uint32_t>> split_sorted(
      std::span<const std::uint32_t> sorted_indices) const;

  [[nodiscard]] std::span<const std::size_t> offsets() const {
    return offsets_;
  }

 private:
  std::vector<std::size_t> offsets_{0};
};

}  // namespace rcf::data
