#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "la/matrix.hpp"
#include "sparse/generate.hpp"

namespace rcf::data {

Dataset make_regression(const SyntheticOptions& opts) {
  RCF_CHECK_MSG(opts.num_samples > 0 && opts.num_features > 0,
                "make_regression: empty shape");
  RCF_CHECK_MSG(opts.support_fraction > 0.0 && opts.support_fraction <= 1.0,
                "make_regression: support_fraction in (0,1]");

  sparse::GenerateOptions gen;
  gen.rows = opts.num_samples;
  gen.cols = opts.num_features;
  gen.density = opts.density;
  gen.seed = derive_seed(opts.seed, /*salt=*/0xDA7A);

  Dataset ds;
  ds.name = opts.name;
  ds.xt = sparse::generate_random(gen);

  if (opts.latent_rank > 0) {
    // Replace the independent values with a rank-r Gaussian field evaluated
    // at the structural non-zeros: value(i, j) = <z_i, b_j> / sqrt(r).
    const std::size_t r = opts.latent_rank;
    la::Matrix mixing(opts.num_features, r);
    Rng brng(derive_seed(opts.seed, /*salt=*/0xB16), /*stream=*/0);
    for (std::size_t i = 0; i < mixing.size(); ++i) {
      mixing.data()[i] = brng.normal();
    }
    std::vector<std::size_t> row_ptr(ds.xt.row_ptr().begin(),
                                     ds.xt.row_ptr().end());
    std::vector<std::uint32_t> col_idx(ds.xt.col_idx().begin(),
                                       ds.xt.col_idx().end());
    std::vector<double> values(ds.xt.values().begin(),
                               ds.xt.values().end());
    const double inv_sqrt_r = 1.0 / std::sqrt(static_cast<double>(r));
    std::vector<double> z(r);
    for (std::size_t row = 0; row < opts.num_samples; ++row) {
      Rng zrng(derive_seed(opts.seed, /*salt=*/0x1A7E47), /*stream=*/row);
      for (auto& v : z) {
        v = zrng.normal();
      }
      for (std::size_t p = row_ptr[row]; p < row_ptr[row + 1]; ++p) {
        const auto b = mixing.row(col_idx[p]);
        double acc = 0.0;
        for (std::size_t t = 0; t < r; ++t) {
          acc += b[t] * z[t];
        }
        values[p] = acc * inv_sqrt_r;
      }
    }
    ds.xt = sparse::CsrMatrix::from_parts(opts.num_samples, opts.num_features,
                                          std::move(row_ptr),
                                          std::move(col_idx),
                                          std::move(values));
  }

  RCF_CHECK_MSG(opts.condition >= 1.0,
                "make_regression: condition must be >= 1");
  if (opts.condition > 1.0 && opts.num_features > 1) {
    // Geometric feature-scale decay: column j scaled by cond^(-j/(d-1)).
    std::vector<std::size_t> row_ptr(ds.xt.row_ptr().begin(),
                                     ds.xt.row_ptr().end());
    std::vector<std::uint32_t> col_idx(ds.xt.col_idx().begin(),
                                       ds.xt.col_idx().end());
    std::vector<double> values(ds.xt.values().begin(),
                               ds.xt.values().end());
    const double log_cond = std::log(opts.condition);
    const auto dm1 = static_cast<double>(opts.num_features - 1);
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] *= std::exp(-log_cond * static_cast<double>(col_idx[i]) / dm1);
    }
    ds.xt = sparse::CsrMatrix::from_parts(opts.num_samples, opts.num_features,
                                          std::move(row_ptr),
                                          std::move(col_idx),
                                          std::move(values));
  }

  // Planted sparse model w*.
  const auto support = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::round(opts.support_fraction *
                        static_cast<double>(opts.num_features))));
  Rng wrng(derive_seed(opts.seed, /*salt=*/0x3E16), /*stream=*/0);
  auto support_idx =
      wrng.sample_without_replacement(opts.num_features, support);
  la::Vector w_true(opts.num_features, 0.0);
  const double log_cond_w =
      opts.num_features > 1 ? std::log(opts.condition) : 0.0;
  const auto dm1w =
      static_cast<double>(std::max<std::size_t>(1, opts.num_features - 1));
  for (auto c : support_idx) {
    // +-1-ish weights away from zero so the support is identifiable.
    const double sign = wrng.uniform() < 0.5 ? -1.0 : 1.0;
    double w = sign * wrng.uniform(0.5, 1.5);
    if (opts.balanced_signal && opts.condition > 1.0) {
      // Undo the feature-scale decay so each supported feature contributes
      // O(1) label variance (see SyntheticOptions::balanced_signal).
      w *= std::exp(log_cond_w * static_cast<double>(c) / dm1w);
    }
    w_true[c] = w;
  }

  // y = X^T w* + noise  (optionally thresholded to +-1).
  ds.y.resize(opts.num_samples);
  ds.xt.spmv(w_true.span(), ds.y.span());
  Rng nrng(derive_seed(opts.seed, /*salt=*/0x2015E), /*stream=*/1);
  for (std::size_t i = 0; i < opts.num_samples; ++i) {
    ds.y[i] += nrng.normal(0.0, opts.noise_stddev);
    if (opts.binary_labels) {
      ds.y[i] = ds.y[i] >= 0.0 ? 1.0 : -1.0;
    }
  }

  ds.paper_rows = opts.num_samples;
  ds.paper_cols = opts.num_features;
  ds.paper_density = opts.density;
  ds.scale = 1.0;
  ds.validate();
  return ds;
}

const std::vector<PaperDatasetSpec>& paper_dataset_specs() {
  // Table 2 of the paper; density given there as "Percentage of nnz (f)".
  static const std::vector<PaperDatasetSpec> kSpecs = {
      {"abalone", 4177, 8, 1.0, false, 0.1},
      {"SUSY", 5'000'000, 18, 0.2539, true, 0.1},
      {"covtype", 581'012, 54, 0.2212, true, 0.1},
      {"mnist", 60'000, 780, 0.1922, false, 0.1},
      {"epsilon", 400'000, 2000, 1.0, true, 0.0001},
  };
  return kSpecs;
}

const PaperDatasetSpec& paper_dataset_spec(const std::string& name) {
  for (const auto& spec : paper_dataset_specs()) {
    if (spec.name == name) {
      return spec;
    }
  }
  throw InvalidArgument("unknown paper dataset: " + name);
}

double default_clone_scale(const std::string& name) {
  // Chosen so each clone builds and solves in seconds on one core while
  // staying strongly overdetermined (m >> d).
  if (name == "abalone") return 1.0;       // 4177 x 8: already tiny
  if (name == "SUSY") return 0.01;         // 50,000 x 18
  if (name == "covtype") return 0.05;      // 29,050 x 54
  if (name == "mnist") return 0.1;         // 6,000 x 780
  if (name == "epsilon") return 0.0075;    // 3,000 x 2000 (dense; the
                                           // d^2-per-sample Gram makes this
                                           // the most expensive clone)
  throw InvalidArgument("unknown paper dataset: " + name);
}

Dataset make_paper_clone(const std::string& name, double scale,
                         std::uint64_t seed) {
  RCF_CHECK_MSG(scale > 0.0 && scale <= 1.0,
                "make_paper_clone: scale must be in (0, 1]");
  const PaperDatasetSpec& spec = paper_dataset_spec(name);
  SyntheticOptions opts;
  opts.name = spec.name;
  opts.num_samples = std::max<std::size_t>(
      spec.cols * 2,
      static_cast<std::size_t>(std::round(scale * static_cast<double>(spec.rows))));
  opts.num_features = spec.cols;
  opts.density = spec.density;
  // Continuous labels even for the classification benchmarks: the solvers
  // only see least-squares residuals, and a small-noise linear model keeps
  // F(w*) << F(0), so the relative objective error e_n stays informative at
  // clone scale (with +-1 labels the irreducible residual dominates F* and
  // tol = 0.01 is reached in a handful of iterations, unlike the paper's
  // full-size runs).  Documented in DESIGN.md "Substitutions".
  opts.binary_labels = false;
  opts.support_fraction = 0.5;
  opts.noise_stddev = 0.1;
  // The wide image/physics benchmarks have effective rank far below d --
  // that structure is what makes subsampled Hessians informative at
  // mbar < d (and the paper's Hessian-reuse productive there).
  if (spec.cols >= 500) {
    opts.latent_rank = 64;
  }
  // Real LIBSVM benchmarks are far from isotropic; this spread reproduces
  // the iteration counts (hundreds to tolerance) the paper reports.
  opts.condition = 100.0;
  opts.seed = seed;

  Dataset ds = make_regression(opts);
  ds.paper_rows = spec.rows;
  ds.paper_cols = spec.cols;
  ds.paper_density = spec.density;
  ds.scale = static_cast<double>(ds.num_samples()) /
             static_cast<double>(spec.rows);
  return ds;
}

}  // namespace rcf::data
