// Random sparse matrix generation.
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace rcf::sparse {

/// Options for random CSR generation.
struct GenerateOptions {
  std::size_t rows = 0;
  std::size_t cols = 0;
  /// Target fill-in f in (0, 1]; each row gets round(f * cols) non-zeros at
  /// uniformly random column positions (so overall density is ~f, matching
  /// the paper's "fdm non-zeros uniformly distributed" assumption).
  double density = 1.0;
  /// Values ~ Normal(0, value_stddev).
  double value_stddev = 1.0;
  std::uint64_t seed = 42;
};

/// Generates a random CSR matrix per `opts`.
[[nodiscard]] CsrMatrix generate_random(const GenerateOptions& opts);

}  // namespace rcf::sparse
