// Sampled Gram-matrix kernels.
//
// These are the stage-B kernels of the paper's Fig. 1: given the sample-major
// matrix X^T (CSR, one row per sample x_i) and a sampled index set I_n, form
//
//   H_n = (1/mbar) * sum_{i in I_n} x_i x_i^T      (Alg. 5 line 5)
//   R_n = (1/mbar) * sum_{i in I_n} y_i x_i
//
// by accumulating sparse outer products into dense storage.  Each kernel
// returns the exact number of floating-point multiply-adds performed, which
// feeds the alpha-beta-gamma cost model (Table 1's  d^2 * mbar * f  term --
// for a row with nnz_i non-zeros the outer product costs nnz_i^2 madds).
#pragma once

#include <cstdint>
#include <span>

#include "la/matrix.hpp"
#include "sparse/csr.hpp"

namespace rcf::sparse {

/// Accumulates scale * sum_{i in idx} x_i x_i^T into `h` (must be d x d,
/// pre-zeroed or holding a previous partial sum) and scale * sum y_i x_i into
/// `r`.  Returns the number of flops performed (2 per multiply-add).
std::uint64_t accumulate_sampled_gram(const CsrMatrix& xt,
                                      std::span<const double> y,
                                      std::span<const std::uint32_t> idx,
                                      double scale, la::Matrix& h,
                                      std::span<double> r);

/// H = (1/|idx|) sum_{i in idx} x_i x_i^T ; R = (1/|idx|) sum y_i x_i.
/// Overwrites h and r.  Returns flops.
std::uint64_t sampled_gram(const CsrMatrix& xt, std::span<const double> y,
                           std::span<const std::uint32_t> idx, la::Matrix& h,
                           std::span<double> r);

/// Full Gram over all m samples: H = (1/m) X X^T, R = (1/m) X y.
/// Used by the variance-reduction epoch step (Eq. 9) and the PN driver.
std::uint64_t full_gram(const CsrMatrix& xt, std::span<const double> y,
                        la::Matrix& h, std::span<double> r);

/// Exact flop count accumulate_sampled_gram would perform for `idx`,
/// without doing the work.  Used for per-rank critical-path costing.
[[nodiscard]] std::uint64_t sampled_gram_flops(
    const CsrMatrix& xt, std::span<const std::uint32_t> idx);

/// Weighted sampled Gram H = (1/|idx|) sum_{i in idx} weight_i x_i x_i^T.
/// `weights` is indexed by global row (length m).  This is the generalized
/// ERM Hessian kernel (e.g. logistic regression: weight_i =
/// sigma_i (1 - sigma_i)).  Overwrites h.  Returns flops.
std::uint64_t weighted_sampled_gram(const CsrMatrix& xt,
                                    std::span<const double> weights,
                                    std::span<const std::uint32_t> idx,
                                    la::Matrix& h);

}  // namespace rcf::sparse
