#include "sparse/gram.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "check/partition.hpp"
#include "common/error.hpp"
#include "exec/pool.hpp"
#include "la/backend.hpp"
#include "la/blas.hpp"
#include "la/simd.hpp"

namespace rcf::sparse {

namespace {

/// Accumulates the H rows in [lo, hi) of one weighted sparse outer product
/// h += w * x x^T (upper triangle) and the matching entries of
/// r += (yi * w) * x.  `yw` is the pre-folded scalar yi * w, hoisted so the
/// inner loops do one multiply per touched entry instead of two.
///
/// The [lo, hi) row range is how the pool parallelizes this kernel: each
/// pool thread owns a disjoint range of H rows (= feature indices) and
/// every thread walks the sample rows in the same order, so each H / r
/// entry accumulates exactly the sequential sum -- bit-identical results
/// at any pool width (DESIGN.md "Execution layer").
inline void outer_product_row_range(const SparseRowView& row, double w,
                                    double yw, la::Matrix& h,
                                    std::span<double> r, std::size_t lo,
                                    std::size_t hi) {
  const std::size_t k = row.nnz();
  if (k == h.cols()) {
    // Dense row: column indices are 0..d-1, so skip the indirection and let
    // the inner loop vectorize (the hot path for dense datasets such as
    // epsilon, where this kernel is d^2 work per sample).
    for (std::size_t a = lo; a < hi; ++a) {
      const double va = w * row.vals[a];
      auto hrow = h.row(a);
      for (std::size_t b = a; b < k; ++b) {
        hrow[b] += va * row.vals[b];
      }
      r[a] += yw * row.vals[a];
    }
  } else {
    // Column indices within a row are strictly ascending (CSR invariant),
    // so the first index >= lo locates this thread's slice of the row.
    const std::uint32_t* cols_begin = row.cols.data();
    const std::uint32_t* cols_end = cols_begin + k;
    const std::uint32_t* first =
        lo == 0 ? cols_begin
                : std::lower_bound(cols_begin, cols_end,
                                   static_cast<std::uint32_t>(lo));
    for (std::size_t a = static_cast<std::size_t>(first - cols_begin);
         a < k && row.cols[a] < hi; ++a) {
      const std::uint32_t ca = row.cols[a];
      const double va = w * row.vals[a];
      auto hrow = h.row(ca);
      for (std::size_t b = a; b < k; ++b) {
        hrow[row.cols[b]] += va * row.vals[b];
      }
      r[ca] += yw * row.vals[a];
    }
  }
}

/// Blocked SIMD fast path: four *dense* sample rows fused into one sweep of
/// the owned H rows, so each H element is loaded and stored once per four
/// samples instead of once per sample (the accumulation is memory-bound on
/// H traffic).  Every H / r element still receives exactly one term per
/// sample, added in idx order -- the same per-element term order as the
/// scalar path -- and the four-sample batch boundaries depend only on the
/// idx list, never on the pool width (DESIGN.md "Kernel backends").
inline void dense_quad_row_range(const SparseRowView rows[4],
                                 const double w[4], const double yw[4],
                                 la::Matrix& h, std::span<double> r,
                                 std::size_t lo, std::size_t hi) {
  const std::size_t k = h.cols();
  const double* v0 = rows[0].vals.data();
  const double* v1 = rows[1].vals.data();
  const double* v2 = rows[2].vals.data();
  const double* v3 = rows[3].vals.data();
  for (std::size_t a = lo; a < hi; ++a) {
    const double va0 = w[0] * v0[a];
    const double va1 = w[1] * v1[a];
    const double va2 = w[2] * v2[a];
    const double va3 = w[3] * v3[a];
    auto hrow = h.row(a);
    const la::simd::V4 b0 = la::simd::broadcast(va0);
    const la::simd::V4 b1 = la::simd::broadcast(va1);
    const la::simd::V4 b2 = la::simd::broadcast(va2);
    const la::simd::V4 b3 = la::simd::broadcast(va3);
    std::size_t b = a;
    for (; b + la::simd::kLanes <= k; b += la::simd::kLanes) {
      la::simd::V4 acc = la::simd::load4(hrow.data() + b);
      acc += b0 * la::simd::load4(v0 + b);
      acc += b1 * la::simd::load4(v1 + b);
      acc += b2 * la::simd::load4(v2 + b);
      acc += b3 * la::simd::load4(v3 + b);
      la::simd::store4(hrow.data() + b, acc);
    }
    for (; b < k; ++b) {
      hrow[b] += va0 * v0[b];
      hrow[b] += va1 * v1[b];
      hrow[b] += va2 * v2[b];
      hrow[b] += va3 * v3[b];
    }
    r[a] += yw[0] * v0[a];
    r[a] += yw[1] * v1[a];
    r[a] += yw[2] * v2[a];
    r[a] += yw[3] * v3[a];
  }
}

/// Accumulation driver shared by the plain and weighted Gram kernels:
/// `row_scale(i)` yields the (w, yw) pair for sample row i.  Dispatches
/// onto the ambient pool with triangle-balanced H-row ranges when the work
/// is worth it; sequential execution is the width-1 special case of the
/// same code (full range [0, d)).
template <typename RowScale>
void accumulate_rows(const CsrMatrix& xt, std::span<const std::uint32_t> idx,
                     std::uint64_t flops, la::Matrix& h, std::span<double> r,
                     const RowScale& row_scale) {
  const std::size_t d = h.cols();
  const bool use_simd = la::active_backend() == la::Backend::kSimd;
  const auto run_range = [&](std::size_t lo, std::size_t hi) {
    if (use_simd) {
      // Batch the sample list in fours; a batch of dense rows takes the
      // fused quad sweep, anything else (sparse rows, the tail) falls back
      // to the per-sample kernel.  Batch composition is a pure function of
      // (idx, matrix), so the grouping is identical at every pool width.
      std::size_t s = 0;
      for (; s + 4 <= idx.size(); s += 4) {
        SparseRowView rows[4] = {xt.row(idx[s]), xt.row(idx[s + 1]),
                                 xt.row(idx[s + 2]), xt.row(idx[s + 3])};
        double w[4], yw[4];
        bool all_dense = true;
        for (int q = 0; q < 4; ++q) {
          RCF_DCHECK(idx[s + static_cast<std::size_t>(q)] < xt.rows());
          const auto [wq, ywq] = row_scale(idx[s + static_cast<std::size_t>(q)]);
          w[q] = wq;
          yw[q] = ywq;
          all_dense = all_dense && rows[q].nnz() == d;
        }
        if (all_dense && d > 0) {
          dense_quad_row_range(rows, w, yw, h, r, lo, hi);
        } else {
          for (int q = 0; q < 4; ++q) {
            outer_product_row_range(rows[q], w[q], yw[q], h, r, lo, hi);
          }
        }
      }
      for (; s < idx.size(); ++s) {
        const std::uint32_t i = idx[s];
        RCF_DCHECK(i < xt.rows());
        const auto [wi, ywi] = row_scale(i);
        outer_product_row_range(xt.row(i), wi, ywi, h, r, lo, hi);
      }
      return;
    }
    for (const std::uint32_t i : idx) {
      RCF_DCHECK(i < xt.rows());
      const auto [w, yw] = row_scale(i);
      outer_product_row_range(xt.row(i), w, yw, h, r, lo, hi);
    }
  };
  exec::Pool* pool = exec::usable_pool(flops);
  if (pool == nullptr) {
    run_range(0, d);
    return;
  }
  const int width = pool->width();
  if (check::partition_audit_due()) {
    check::audit_partition(
        "gram.task", d, static_cast<std::size_t>(width),
        [&](std::size_t part) {
          const exec::Range pr =
              exec::triangle_range(d, width, static_cast<int>(part));
          return std::pair<std::size_t, std::size_t>{pr.begin, pr.end};
        });
  }
  pool->run("gram.task", [&](int t) {
    const exec::Range range = exec::triangle_range(d, width, t);
    if (!range.empty()) {
      run_range(range.begin, range.end);
    }
  });
}

}  // namespace

std::uint64_t accumulate_sampled_gram(const CsrMatrix& xt,
                                      std::span<const double> y,
                                      std::span<const std::uint32_t> idx,
                                      double scale, la::Matrix& h,
                                      std::span<double> r) {
  const std::size_t d = xt.cols();
  RCF_CHECK_MSG(h.rows() == d && h.cols() == d, "gram: H must be d x d");
  RCF_CHECK_MSG(r.size() == d, "gram: R must have length d");
  RCF_CHECK_MSG(y.size() == xt.rows(), "gram: y must have length m");
  const std::uint64_t flops = sampled_gram_flops(xt, idx);
  accumulate_rows(xt, idx, flops, h, r, [&](std::uint32_t i) {
    return std::pair<double, double>(scale, y[i] * scale);
  });
  return flops;
}

std::uint64_t sampled_gram(const CsrMatrix& xt, std::span<const double> y,
                           std::span<const std::uint32_t> idx, la::Matrix& h,
                           std::span<double> r) {
  RCF_CHECK_MSG(!idx.empty(), "sampled_gram: empty sample set");
  h.fill(0.0);
  la::set_zero(r);
  const double scale = 1.0 / static_cast<double>(idx.size());
  const std::uint64_t flops =
      accumulate_sampled_gram(xt, y, idx, scale, h, r);
  la::symmetrize_from_upper(h);
  return flops;
}

std::uint64_t full_gram(const CsrMatrix& xt, std::span<const double> y,
                        la::Matrix& h, std::span<double> r) {
  const std::size_t m = xt.rows();
  RCF_CHECK_MSG(m > 0, "full_gram: empty matrix");
  std::vector<std::uint32_t> all(m);
  std::iota(all.begin(), all.end(), 0u);
  return sampled_gram(xt, y, all, h, r);
}

std::uint64_t weighted_sampled_gram(const CsrMatrix& xt,
                                    std::span<const double> weights,
                                    std::span<const std::uint32_t> idx,
                                    la::Matrix& h) {
  const std::size_t d = xt.cols();
  RCF_CHECK_MSG(h.rows() == d && h.cols() == d,
                "weighted_gram: H must be d x d");
  RCF_CHECK_MSG(weights.size() == xt.rows(),
                "weighted_gram: weights must have length m");
  RCF_CHECK_MSG(!idx.empty(), "weighted_gram: empty sample set");
  h.fill(0.0);
  const double scale = 1.0 / static_cast<double>(idx.size());
  std::vector<double> r_unused(d, 0.0);
  const std::uint64_t flops = sampled_gram_flops(xt, idx);
  accumulate_rows(xt, idx, flops, h, r_unused, [&](std::uint32_t i) {
    return std::pair<double, double>(scale * weights[i], 0.0);
  });
  la::symmetrize_from_upper(h);
  return flops;
}

std::uint64_t sampled_gram_flops(const CsrMatrix& xt,
                                 std::span<const std::uint32_t> idx) {
  std::uint64_t madds = 0;
  for (const std::uint32_t i : idx) {
    const std::uint64_t k = xt.row_nnz(i);
    madds += k * (k + 1) / 2 + k;
  }
  return 2 * madds;
}

}  // namespace rcf::sparse
