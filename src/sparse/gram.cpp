#include "sparse/gram.hpp"

#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "la/blas.hpp"

namespace rcf::sparse {

namespace {

/// Accumulates one weighted sparse outer product h += w * x x^T (upper
/// triangle) and r += (w * yi) * x.  Returns madds done.
inline std::uint64_t outer_product_row(const SparseRowView& row, double w,
                                       double yi, la::Matrix& h,
                                       std::span<double> r) {
  const std::size_t k = row.nnz();
  if (k == h.cols()) {
    // Dense row: column indices are 0..d-1, so skip the indirection and let
    // the inner loop vectorize (the hot path for dense datasets such as
    // epsilon, where this kernel is d^2 work per sample).
    for (std::size_t a = 0; a < k; ++a) {
      const double va = w * row.vals[a];
      auto hrow = h.row(a);
      for (std::size_t b = a; b < k; ++b) {
        hrow[b] += va * row.vals[b];
      }
      r[a] += yi * w * row.vals[a];
    }
  } else {
    for (std::size_t a = 0; a < k; ++a) {
      const std::uint32_t ca = row.cols[a];
      const double va = w * row.vals[a];
      auto hrow = h.row(ca);
      for (std::size_t b = a; b < k; ++b) {
        hrow[row.cols[b]] += va * row.vals[b];
      }
      r[ca] += yi * w * row.vals[a];
    }
  }
  // upper-triangle madds + rhs madds
  return k * (k + 1) / 2 + k;
}

}  // namespace

std::uint64_t accumulate_sampled_gram(const CsrMatrix& xt,
                                      std::span<const double> y,
                                      std::span<const std::uint32_t> idx,
                                      double scale, la::Matrix& h,
                                      std::span<double> r) {
  const std::size_t d = xt.cols();
  RCF_CHECK_MSG(h.rows() == d && h.cols() == d, "gram: H must be d x d");
  RCF_CHECK_MSG(r.size() == d, "gram: R must have length d");
  RCF_CHECK_MSG(y.size() == xt.rows(), "gram: y must have length m");
  std::uint64_t madds = 0;
  for (const std::uint32_t i : idx) {
    RCF_DCHECK(i < xt.rows());
    madds += outer_product_row(xt.row(i), scale, y[i], h, r);
  }
  return 2 * madds;
}

std::uint64_t sampled_gram(const CsrMatrix& xt, std::span<const double> y,
                           std::span<const std::uint32_t> idx, la::Matrix& h,
                           std::span<double> r) {
  RCF_CHECK_MSG(!idx.empty(), "sampled_gram: empty sample set");
  h.fill(0.0);
  la::set_zero(r);
  const double scale = 1.0 / static_cast<double>(idx.size());
  const std::uint64_t flops =
      accumulate_sampled_gram(xt, y, idx, scale, h, r);
  la::symmetrize_from_upper(h);
  return flops;
}

std::uint64_t full_gram(const CsrMatrix& xt, std::span<const double> y,
                        la::Matrix& h, std::span<double> r) {
  const std::size_t m = xt.rows();
  RCF_CHECK_MSG(m > 0, "full_gram: empty matrix");
  std::vector<std::uint32_t> all(m);
  std::iota(all.begin(), all.end(), 0u);
  return sampled_gram(xt, y, all, h, r);
}

std::uint64_t weighted_sampled_gram(const CsrMatrix& xt,
                                    std::span<const double> weights,
                                    std::span<const std::uint32_t> idx,
                                    la::Matrix& h) {
  const std::size_t d = xt.cols();
  RCF_CHECK_MSG(h.rows() == d && h.cols() == d,
                "weighted_gram: H must be d x d");
  RCF_CHECK_MSG(weights.size() == xt.rows(),
                "weighted_gram: weights must have length m");
  RCF_CHECK_MSG(!idx.empty(), "weighted_gram: empty sample set");
  h.fill(0.0);
  const double scale = 1.0 / static_cast<double>(idx.size());
  std::vector<double> r_unused(d, 0.0);
  std::uint64_t madds = 0;
  for (const std::uint32_t i : idx) {
    RCF_DCHECK(i < xt.rows());
    madds += outer_product_row(xt.row(i), scale * weights[i], 0.0, h,
                               r_unused);
  }
  la::symmetrize_from_upper(h);
  return 2 * madds;
}

std::uint64_t sampled_gram_flops(const CsrMatrix& xt,
                                 std::span<const std::uint32_t> idx) {
  std::uint64_t madds = 0;
  for (const std::uint32_t i : idx) {
    const std::uint64_t k = xt.row_nnz(i);
    madds += k * (k + 1) / 2 + k;
  }
  return 2 * madds;
}

}  // namespace rcf::sparse
