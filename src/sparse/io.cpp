#include "sparse/io.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string_view>

#include "common/error.hpp"

namespace rcf::sparse {

namespace {

// Strict full-token numeric parsing.  The sto*/stream extractors accept
// trailing junk ("3x" parses as 3) and signed wraparound ("-3" parses as a
// huge unsigned), which turns corrupt files into silently misparsed data;
// from_chars either consumes the whole token or the token is rejected.

bool parse_full_u64(std::string_view token, std::uint64_t& out) {
  if (token.empty()) {
    return false;
  }
  const auto* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(token.data(), end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_full_double(std::string_view token, double& out) {
  if (!token.empty() && token.front() == '+') {
    token.remove_prefix(1);  // from_chars rejects an explicit plus sign.
  }
  if (token.empty()) {
    return false;
  }
  const auto* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(token.data(), end, out);
  // Overflowing values ("1e999") and the textual inf/nan forms are all
  // rejected: a dataset value the solver cannot compute with is a parse
  // error, not a number.
  return ec == std::errc{} && ptr == end && std::isfinite(out);
}

[[noreturn]] void libsvm_error(std::size_t line_no, const std::string& why) {
  throw IoError("libsvm parse error at line " + std::to_string(line_no) +
                ": " + why);
}

/// Rejects duplicate (row, col) coordinates: from_triplets sums duplicates,
/// so a corrupt file with a repeated entry would silently change values
/// instead of failing.  `what` names the format for the diagnostic.
void reject_duplicates(std::vector<Triplet> triplets, const char* what) {
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  const auto dup = std::adjacent_find(
      triplets.begin(), triplets.end(), [](const Triplet& a, const Triplet& b) {
        return a.row == b.row && a.col == b.col;
      });
  if (dup != triplets.end()) {
    throw IoError(std::string(what) + ": duplicate entry at row " +
                  std::to_string(dup->row + 1) + ", column " +
                  std::to_string(dup->col + 1));
  }
}

}  // namespace

LabelledMatrix read_libsvm_stream(std::istream& in, std::size_t num_features) {
  std::vector<Triplet> triplets;
  std::vector<double> labels;
  std::size_t max_feature = 0;
  std::string line;
  std::string token;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    if (!(ls >> token)) {
      continue;  // blank or comment-only line
    }
    double label;
    if (!parse_full_double(token, label)) {
      libsvm_error(line_no, "bad label '" + token + "'");
    }
    const auto row = static_cast<std::uint32_t>(labels.size());
    labels.push_back(label);
    while (ls >> token) {
      const auto colon = token.find(':');
      if (colon == std::string::npos) {
        libsvm_error(line_no, "token '" + token + "' lacks ':'");
      }
      std::uint64_t idx;
      double value;
      if (!parse_full_u64(std::string_view(token).substr(0, colon), idx) ||
          !parse_full_double(std::string_view(token).substr(colon + 1),
                             value)) {
        libsvm_error(line_no, "bad token '" + token + "'");
      }
      if (idx == 0) {
        libsvm_error(line_no, "indices are 1-based");
      }
      if (idx > std::numeric_limits<std::uint32_t>::max()) {
        libsvm_error(line_no, "feature index " + std::to_string(idx) +
                                  " exceeds the supported range");
      }
      max_feature = std::max(max_feature, static_cast<std::size_t>(idx));
      triplets.push_back({row, static_cast<std::uint32_t>(idx - 1), value});
    }
  }
  const std::size_t d = num_features == 0 ? max_feature : num_features;
  if (num_features != 0 && max_feature > num_features) {
    throw IoError("libsvm: file has feature index " +
                  std::to_string(max_feature) + " > requested dimension " +
                  std::to_string(num_features));
  }
  reject_duplicates(triplets, "libsvm");
  LabelledMatrix out;
  out.xt = CsrMatrix::from_triplets(labels.size(), d, std::move(triplets));
  out.y = la::Vector(std::move(labels));
  return out;
}

LabelledMatrix read_libsvm(const std::string& path, std::size_t num_features) {
  std::ifstream in(path);
  if (!in) {
    throw IoError("cannot open LIBSVM file: " + path);
  }
  return read_libsvm_stream(in, num_features);
}

void write_libsvm(const std::string& path, const LabelledMatrix& data) {
  RCF_CHECK_MSG(data.y.size() == data.xt.rows(),
                "write_libsvm: label count mismatch");
  std::ofstream out(path);
  if (!out) {
    throw IoError("cannot open for writing: " + path);
  }
  char buf[64];
  for (std::size_t r = 0; r < data.xt.rows(); ++r) {
    std::snprintf(buf, sizeof buf, "%.17g", data.y[r]);
    out << buf;
    const auto row = data.xt.row(r);
    for (std::size_t i = 0; i < row.nnz(); ++i) {
      std::snprintf(buf, sizeof buf, " %u:%.17g", row.cols[i] + 1, row.vals[i]);
      out << buf;
    }
    out << '\n';
  }
  if (!out) {
    throw IoError("write failed: " + path);
  }
}

CsrMatrix read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw IoError("cannot open MatrixMarket file: " + path);
  }
  std::string line;
  if (!std::getline(in, line) || line.rfind("%%MatrixMarket", 0) != 0) {
    throw IoError("not a MatrixMarket file: " + path);
  }
  // Validate the full banner instead of substring-matching: pattern /
  // complex / integer / array files would otherwise be misread as real
  // coordinate data.
  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  if (object != "matrix" || format != "coordinate" || field != "real" ||
      (symmetry != "general" && symmetry != "symmetric")) {
    throw IoError("unsupported MatrixMarket banner in " + path +
                  " (need: matrix coordinate real general|symmetric)");
  }
  const bool symmetric = symmetry == "symmetric";
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') {
      break;
    }
  }
  std::istringstream header(line);
  std::size_t rows, cols, nnz;
  if (!(header >> rows >> cols >> nnz)) {
    throw IoError("MatrixMarket: bad size line in " + path);
  }
  std::string trailing;
  if (header >> trailing) {
    throw IoError("MatrixMarket: trailing junk on size line in " + path);
  }
  if (symmetric && rows != cols) {
    throw IoError("MatrixMarket: symmetric matrix must be square in " + path);
  }
  if (rows > std::numeric_limits<std::uint32_t>::max() ||
      cols > std::numeric_limits<std::uint32_t>::max()) {
    throw IoError("MatrixMarket: dimensions exceed the supported range in " +
                  path);
  }
  // A claimed nnz above rows * cols is corrupt (division form avoids the
  // product overflowing).
  if (rows == 0 || cols == 0) {
    if (nnz != 0) {
      throw IoError("MatrixMarket: nonzero count in an empty matrix in " +
                    path);
    }
  } else if (nnz / rows > cols || (nnz / rows == cols && nnz % rows != 0)) {
    throw IoError("MatrixMarket: claimed nnz " + std::to_string(nnz) +
                  " exceeds rows * cols in " + path);
  }
  std::vector<Triplet> triplets;
  // Cap the up-front reservation: a corrupt-but-plausible nnz claim must
  // fail with "truncated entry list", not a multi-gigabyte allocation.
  triplets.reserve(std::min<std::size_t>(nnz, std::size_t{1} << 20));
  for (std::size_t i = 0; i < nnz; ++i) {
    std::size_t r, c;
    double v;
    if (!(in >> r >> c >> v)) {
      throw IoError("MatrixMarket: truncated entry list in " + path);
    }
    if (r == 0 || c == 0 || r > rows || c > cols) {
      throw IoError("MatrixMarket: entry (" + std::to_string(r) + ", " +
                    std::to_string(c) + ") outside the declared " +
                    std::to_string(rows) + " x " + std::to_string(cols) +
                    " shape in " + path);
    }
    if (!std::isfinite(v)) {
      throw IoError("MatrixMarket: non-finite value at entry " +
                    std::to_string(i + 1) + " in " + path);
    }
    triplets.push_back({static_cast<std::uint32_t>(r - 1),
                        static_cast<std::uint32_t>(c - 1), v});
    if (symmetric && r != c) {
      triplets.push_back({static_cast<std::uint32_t>(c - 1),
                          static_cast<std::uint32_t>(r - 1), v});
    }
  }
  reject_duplicates(triplets, "MatrixMarket");
  return CsrMatrix::from_triplets(rows, cols, std::move(triplets));
}

void write_matrix_market(const std::string& path, const CsrMatrix& m) {
  std::ofstream out(path);
  if (!out) {
    throw IoError("cannot open for writing: " + path);
  }
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.rows() << ' ' << m.cols() << ' ' << m.nnz() << '\n';
  char buf[64];
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    for (std::size_t i = 0; i < row.nnz(); ++i) {
      std::snprintf(buf, sizeof buf, "%zu %u %.17g\n", r + 1, row.cols[i] + 1,
                    row.vals[i]);
      out << buf;
    }
  }
  if (!out) {
    throw IoError("write failed: " + path);
  }
}

}  // namespace rcf::sparse
