#include "sparse/io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace rcf::sparse {

LabelledMatrix read_libsvm_stream(std::istream& in, std::size_t num_features) {
  std::vector<Triplet> triplets;
  std::vector<double> labels;
  std::size_t max_feature = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and blank lines.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    double label;
    if (!(ls >> label)) {
      continue;  // blank line
    }
    const auto row = static_cast<std::uint32_t>(labels.size());
    labels.push_back(label);
    std::string token;
    while (ls >> token) {
      const auto colon = token.find(':');
      if (colon == std::string::npos) {
        throw IoError("libsvm parse error at line " + std::to_string(line_no) +
                      ": token '" + token + "' lacks ':'");
      }
      std::size_t idx;
      double value;
      try {
        idx = std::stoull(token.substr(0, colon));
        value = std::stod(token.substr(colon + 1));
      } catch (const std::exception&) {
        throw IoError("libsvm parse error at line " + std::to_string(line_no) +
                      ": bad token '" + token + "'");
      }
      if (idx == 0) {
        throw IoError("libsvm parse error at line " + std::to_string(line_no) +
                      ": indices are 1-based");
      }
      max_feature = std::max(max_feature, idx);
      triplets.push_back({row, static_cast<std::uint32_t>(idx - 1), value});
    }
  }
  const std::size_t d = num_features == 0 ? max_feature : num_features;
  if (num_features != 0 && max_feature > num_features) {
    throw IoError("libsvm: file has feature index " +
                  std::to_string(max_feature) + " > requested dimension " +
                  std::to_string(num_features));
  }
  LabelledMatrix out;
  out.xt = CsrMatrix::from_triplets(labels.size(), d, std::move(triplets));
  out.y = la::Vector(std::move(labels));
  return out;
}

LabelledMatrix read_libsvm(const std::string& path, std::size_t num_features) {
  std::ifstream in(path);
  if (!in) {
    throw IoError("cannot open LIBSVM file: " + path);
  }
  return read_libsvm_stream(in, num_features);
}

void write_libsvm(const std::string& path, const LabelledMatrix& data) {
  RCF_CHECK_MSG(data.y.size() == data.xt.rows(),
                "write_libsvm: label count mismatch");
  std::ofstream out(path);
  if (!out) {
    throw IoError("cannot open for writing: " + path);
  }
  char buf[64];
  for (std::size_t r = 0; r < data.xt.rows(); ++r) {
    std::snprintf(buf, sizeof buf, "%.17g", data.y[r]);
    out << buf;
    const auto row = data.xt.row(r);
    for (std::size_t i = 0; i < row.nnz(); ++i) {
      std::snprintf(buf, sizeof buf, " %u:%.17g", row.cols[i] + 1, row.vals[i]);
      out << buf;
    }
    out << '\n';
  }
  if (!out) {
    throw IoError("write failed: " + path);
  }
}

CsrMatrix read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw IoError("cannot open MatrixMarket file: " + path);
  }
  std::string line;
  if (!std::getline(in, line) || line.rfind("%%MatrixMarket", 0) != 0) {
    throw IoError("not a MatrixMarket file: " + path);
  }
  const bool symmetric = line.find("symmetric") != std::string::npos;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') {
      break;
    }
  }
  std::istringstream header(line);
  std::size_t rows, cols, nnz;
  if (!(header >> rows >> cols >> nnz)) {
    throw IoError("MatrixMarket: bad size line in " + path);
  }
  std::vector<Triplet> triplets;
  triplets.reserve(symmetric ? 2 * nnz : nnz);
  for (std::size_t i = 0; i < nnz; ++i) {
    std::size_t r, c;
    double v;
    if (!(in >> r >> c >> v)) {
      throw IoError("MatrixMarket: truncated entry list in " + path);
    }
    triplets.push_back({static_cast<std::uint32_t>(r - 1),
                        static_cast<std::uint32_t>(c - 1), v});
    if (symmetric && r != c) {
      triplets.push_back({static_cast<std::uint32_t>(c - 1),
                          static_cast<std::uint32_t>(r - 1), v});
    }
  }
  return CsrMatrix::from_triplets(rows, cols, std::move(triplets));
}

void write_matrix_market(const std::string& path, const CsrMatrix& m) {
  std::ofstream out(path);
  if (!out) {
    throw IoError("cannot open for writing: " + path);
  }
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.rows() << ' ' << m.cols() << ' ' << m.nnz() << '\n';
  char buf[64];
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    for (std::size_t i = 0; i < row.nnz(); ++i) {
      std::snprintf(buf, sizeof buf, "%zu %u %.17g\n", r + 1, row.cols[i] + 1,
                    row.vals[i]);
      out << buf;
    }
  }
  if (!out) {
    throw IoError("write failed: " + path);
  }
}

}  // namespace rcf::sparse
