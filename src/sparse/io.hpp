// Sparse matrix / dataset file I/O.
//
// Two formats:
//  * LIBSVM  -- "<label> <idx>:<val> ..." one sample per line, 1-based
//    feature indices; the format of the paper's benchmark datasets [9].
//  * MatrixMarket coordinate -- generic sparse matrix exchange.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "la/vector.hpp"
#include "sparse/csr.hpp"

namespace rcf::sparse {

/// A labelled sample matrix: X^T (m samples x d features) plus labels y.
struct LabelledMatrix {
  CsrMatrix xt;
  la::Vector y;
};

/// Reads a LIBSVM file.  `num_features` forces the feature dimension (0 =
/// infer from the maximum index seen).
[[nodiscard]] LabelledMatrix read_libsvm(const std::string& path,
                                         std::size_t num_features = 0);

/// Parses LIBSVM content from a stream (exposed for testing).
[[nodiscard]] LabelledMatrix read_libsvm_stream(std::istream& in,
                                                std::size_t num_features = 0);

/// Writes a LIBSVM file (1-based indices, %.17g values).
void write_libsvm(const std::string& path, const LabelledMatrix& data);

/// Reads a MatrixMarket coordinate file (general, real).
[[nodiscard]] CsrMatrix read_matrix_market(const std::string& path);

/// Writes a MatrixMarket coordinate file.
void write_matrix_market(const std::string& path, const CsrMatrix& m);

}  // namespace rcf::sparse
