// Compressed sparse row matrix.
//
// The dataset matrix of the paper is X in R^{d x m} with samples as columns;
// we store its transpose X^T as CSR (one row per sample), which the paper's
// own implementation also does ("we use the compressed sparse row format").
// Row access is the primitive the sampled-Gram kernel needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "la/matrix.hpp"
#include "sparse/coo.hpp"

namespace rcf::sparse {

/// One sparse row: parallel spans of column indices and values.
struct SparseRowView {
  std::span<const std::uint32_t> cols;
  std::span<const double> vals;

  [[nodiscard]] std::size_t nnz() const { return cols.size(); }
};

/// Immutable CSR matrix of doubles.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from triplets; duplicates are summed, entries need not be sorted.
  static CsrMatrix from_triplets(std::size_t rows, std::size_t cols,
                                 std::vector<Triplet> triplets);

  static CsrMatrix from_coo(const CooMatrix& coo) {
    return from_triplets(coo.rows, coo.cols, coo.entries);
  }

  /// Builds directly from CSR arrays (validated).
  static CsrMatrix from_parts(std::size_t rows, std::size_t cols,
                              std::vector<std::size_t> row_ptr,
                              std::vector<std::uint32_t> col_idx,
                              std::vector<double> values);

  /// Builds a dense matrix stored as CSR (every entry explicit).  Used for
  /// the dense benchmarks (abalone, epsilon) so all solvers share one path.
  static CsrMatrix from_dense(std::size_t rows, std::size_t cols,
                              std::span<const double> row_major);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

  /// Fraction of entries that are non-zero (the paper's fill-in f).
  [[nodiscard]] double density() const;

  [[nodiscard]] SparseRowView row(std::size_t r) const {
    const std::size_t b = row_ptr_[r], e = row_ptr_[r + 1];
    return {{col_idx_.data() + b, e - b}, {values_.data() + b, e - b}};
  }

  [[nodiscard]] std::size_t row_nnz(std::size_t r) const {
    return row_ptr_[r + 1] - row_ptr_[r];
  }

  /// y = A x  (2*nnz flops)
  void spmv(std::span<const double> x, std::span<double> y) const;

  /// y = A^T x  (2*nnz flops)
  void spmv_t(std::span<const double> x, std::span<double> y) const;

  /// Y = A B for dense row-major B (cols x n) into Y (rows x n);
  /// 2*nnz*n flops.  The blocked-SpMV kernel behind multi-RHS Gram
  /// applications; row-partitioned on the ambient exec pool.
  void spmm(const la::Matrix& b, la::Matrix& y) const;

  /// New matrix containing the given rows (in the given order).
  [[nodiscard]] CsrMatrix select_rows(
      std::span<const std::uint32_t> rows) const;

  /// New matrix with rows [begin, end).
  [[nodiscard]] CsrMatrix slice_rows(std::size_t begin, std::size_t end) const;

  /// Transposed copy (CSR of A^T).
  [[nodiscard]] CsrMatrix transposed() const;

  /// Dense row-major expansion (small matrices / tests).
  [[nodiscard]] std::vector<double> to_dense() const;

  /// Approximate resident bytes of the CSR arrays.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Sum of squared row nnz counts: the exact multiply count of one
  /// outer-product Gram accumulation over all rows.
  [[nodiscard]] std::uint64_t sum_row_nnz_squared() const;

  [[nodiscard]] std::span<const std::size_t> row_ptr() const { return row_ptr_; }
  [[nodiscard]] std::span<const std::uint32_t> col_idx() const { return col_idx_; }
  [[nodiscard]] std::span<const double> values() const { return values_; }

  friend bool operator==(const CsrMatrix& a, const CsrMatrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ &&
           a.row_ptr_ == b.row_ptr_ && a.col_idx_ == b.col_idx_ &&
           a.values_ == b.values_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace rcf::sparse
