// Coordinate-format (triplet) sparse matrix builder.
#pragma once

#include <cstdint>
#include <vector>

namespace rcf::sparse {

/// One (row, col, value) entry.
struct Triplet {
  std::uint32_t row;
  std::uint32_t col;
  double value;

  friend bool operator==(const Triplet&, const Triplet&) = default;
};

/// Unordered triplet collection; convert with CsrMatrix::from_triplets.
/// Duplicate (row, col) entries are summed during conversion.
struct CooMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<Triplet> entries;

  void add(std::uint32_t row, std::uint32_t col, double value) {
    entries.push_back({row, col, value});
  }

  [[nodiscard]] std::size_t nnz() const { return entries.size(); }
};

}  // namespace rcf::sparse
