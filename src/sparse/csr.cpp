#include "sparse/csr.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "exec/pool.hpp"
#include "la/backend.hpp"
#include "la/simd.hpp"

namespace rcf::sparse {

CsrMatrix CsrMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                   std::vector<Triplet> triplets) {
  for (const auto& t : triplets) {
    RCF_CHECK_MSG(t.row < rows && t.col < cols,
                  "from_triplets: entry out of bounds");
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  for (std::size_t i = 0; i < triplets.size();) {
    const std::uint32_t r = triplets[i].row;
    const std::uint32_t c = triplets[i].col;
    double v = 0.0;
    while (i < triplets.size() && triplets[i].row == r &&
           triplets[i].col == c) {
      v += triplets[i].value;  // sum duplicates
      ++i;
    }
    if (v != 0.0) {
      m.col_idx_.push_back(c);
      m.values_.push_back(v);
      ++m.row_ptr_[r + 1];
    }
  }
  std::partial_sum(m.row_ptr_.begin(), m.row_ptr_.end(), m.row_ptr_.begin());
  return m;
}

CsrMatrix CsrMatrix::from_parts(std::size_t rows, std::size_t cols,
                                std::vector<std::size_t> row_ptr,
                                std::vector<std::uint32_t> col_idx,
                                std::vector<double> values) {
  RCF_CHECK_MSG(row_ptr.size() == rows + 1, "from_parts: bad row_ptr length");
  RCF_CHECK_MSG(row_ptr.front() == 0, "from_parts: row_ptr[0] != 0");
  RCF_CHECK_MSG(row_ptr.back() == col_idx.size(),
                "from_parts: row_ptr back != nnz");
  RCF_CHECK_MSG(col_idx.size() == values.size(),
                "from_parts: col/val length mismatch");
  for (std::size_t r = 0; r < rows; ++r) {
    RCF_CHECK_MSG(row_ptr[r] <= row_ptr[r + 1],
                  "from_parts: row_ptr not monotone");
    for (std::size_t i = row_ptr[r]; i + 1 < row_ptr[r + 1]; ++i) {
      RCF_CHECK_MSG(col_idx[i] < col_idx[i + 1],
                    "from_parts: columns not strictly ascending in row");
    }
  }
  for (auto c : col_idx) {
    RCF_CHECK_MSG(c < cols, "from_parts: column index out of range");
  }
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  return m;
}

CsrMatrix CsrMatrix::from_dense(std::size_t rows, std::size_t cols,
                                std::span<const double> row_major) {
  RCF_CHECK_MSG(row_major.size() == rows * cols,
                "from_dense: buffer size mismatch");
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = row_major[r * cols + c];
      if (v != 0.0) {
        m.col_idx_.push_back(static_cast<std::uint32_t>(c));
        m.values_.push_back(v);
      }
    }
    m.row_ptr_[r + 1] = m.values_.size();
  }
  return m;
}

double CsrMatrix::density() const {
  if (rows_ == 0 || cols_ == 0) {
    return 0.0;
  }
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

// Parallelization note (spmv / spmv_t / spmm): output-partitioned on the
// ambient exec pool -- y rows for spmv/spmm, y entries (= matrix columns)
// for spmv_t -- with the sequential loop body per element, so results are
// bit-identical at any pool width (DESIGN.md "Execution layer").
//
// Backend note: the SIMD spmv body batches each row's gathered products
// into four independent accumulator chains combined in the fixed hsum
// order; the grouping is a pure function of the row's nnz, so each backend
// stays bitwise width-invariant (DESIGN.md "Kernel backends").  spmv_t and
// spmm vectorize only elementwise work (per-element operation order
// unchanged from scalar).

void CsrMatrix::spmv(std::span<const double> x, std::span<double> y) const {
  if (x.size() != cols_ || y.size() != rows_) {
    throw DimensionMismatch("spmv: shape mismatch");
  }
  const bool use_simd = la::active_backend() == la::Backend::kSimd;
  const auto row_block = [&](int, exec::Range range) {
    if (use_simd) {
      // Row-batched gather kernel: the indirection blocks true vector
      // loads, so run four scalar chains abreast (breaking the dependency
      // chain) and fold them with the same association as simd::hsum.
      for (std::size_t r = range.begin; r < range.end; ++r) {
        const std::size_t row_end = row_ptr_[r + 1];
        double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
        std::size_t i = row_ptr_[r];
        for (; i + 4 <= row_end; i += 4) {
          a0 += values_[i] * x[col_idx_[i]];
          a1 += values_[i + 1] * x[col_idx_[i + 1]];
          a2 += values_[i + 2] * x[col_idx_[i + 2]];
          a3 += values_[i + 3] * x[col_idx_[i + 3]];
        }
        double acc = (a0 + a1) + (a2 + a3);
        for (; i < row_end; ++i) {
          acc += values_[i] * x[col_idx_[i]];
        }
        y[r] = acc;
      }
      return;
    }
    for (std::size_t r = range.begin; r < range.end; ++r) {
      double acc = 0.0;
      for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
        acc += values_[i] * x[col_idx_[i]];
      }
      y[r] = acc;
    }
  };
  exec::Pool* pool = exec::usable_pool(2 * nnz());
  if (pool == nullptr) {
    row_block(0, {0, rows_});
    return;
  }
  const int width = pool->width();
  // Balance by nnz, not row count: task t covers the rows from
  // row_boundary(t) to row_boundary(t + 1), where row_boundary(t) is the
  // first row whose cumulative nnz reaches t's share.  Boundaries are a
  // pure function of (matrix, width), consecutive by construction
  // (lower_bound of non-decreasing targets), and cover every row --
  // including empty ones, whose y entry must still be written.
  const auto row_boundary = [&](int t) -> std::size_t {
    if (t <= 0) {
      return 0;
    }
    if (t >= width) {
      return rows_;
    }
    const std::size_t target = exec::block_range(nnz(), width, t).begin;
    return static_cast<std::size_t>(
        std::lower_bound(row_ptr_.begin(), row_ptr_.end(), target) -
        row_ptr_.begin());
  };
  pool->run("sparse.spmv", [&](int t) {
    const exec::Range range{row_boundary(t), row_boundary(t + 1)};
    if (!range.empty()) {
      row_block(t, range);
    }
  });
}

void CsrMatrix::spmv_t(std::span<const double> x, std::span<double> y) const {
  if (x.size() != rows_ || y.size() != cols_) {
    throw DimensionMismatch("spmv_t: shape mismatch");
  }
  const bool use_simd = la::active_backend() == la::Backend::kSimd;
  // Each task owns the y entries in [lo, hi) and scans the rows in order,
  // accumulating only the entries whose column falls in its slice (located
  // by binary search on the row's ascending column indices).
  const auto col_block = [&](std::size_t lo, std::size_t hi) {
    std::fill(y.begin() + static_cast<std::ptrdiff_t>(lo),
              y.begin() + static_cast<std::ptrdiff_t>(hi), 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
      const double xr = x[r];
      if (xr == 0.0) {
        continue;
      }
      const std::size_t row_begin = row_ptr_[r], row_end = row_ptr_[r + 1];
      std::size_t i = row_begin;
      if (lo > 0) {
        i = static_cast<std::size_t>(
            std::lower_bound(col_idx_.begin() + static_cast<std::ptrdiff_t>(row_begin),
                             col_idx_.begin() + static_cast<std::ptrdiff_t>(row_end),
                             static_cast<std::uint32_t>(lo)) -
            col_idx_.begin());
      }
      if (use_simd) {
        // Scatter with strictly ascending columns: the four statements hit
        // distinct y entries, so this is pure unrolling -- each y element
        // still receives exactly one term per row, in row order.
        for (; i + 4 <= row_end && col_idx_[i + 3] < hi; i += 4) {
          y[col_idx_[i]] += xr * values_[i];
          y[col_idx_[i + 1]] += xr * values_[i + 1];
          y[col_idx_[i + 2]] += xr * values_[i + 2];
          y[col_idx_[i + 3]] += xr * values_[i + 3];
        }
      }
      for (; i < row_end && col_idx_[i] < hi; ++i) {
        y[col_idx_[i]] += xr * values_[i];
      }
    }
  };
  exec::Pool* pool = exec::usable_pool(2 * nnz());
  if (pool == nullptr) {
    col_block(0, cols_);
    return;
  }
  const int width = pool->width();
  pool->run("sparse.spmv_t", [&](int t) {
    const exec::Range range = exec::block_range(cols_, width, t);
    if (!range.empty()) {
      col_block(range.begin, range.end);
    }
  });
}

void CsrMatrix::spmm(const la::Matrix& b, la::Matrix& y) const {
  if (b.rows() != cols_ || y.rows() != rows_ || y.cols() != b.cols()) {
    throw DimensionMismatch("spmm: shape mismatch");
  }
  const std::size_t n = b.cols();
  const bool use_simd = la::active_backend() == la::Backend::kSimd;
  const auto row_block = [&](int, exec::Range range) {
    for (std::size_t r = range.begin; r < range.end; ++r) {
      auto yrow = y.row(r);
      std::fill(yrow.begin(), yrow.end(), 0.0);
      for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
        const double v = values_[i];
        const auto brow = b.row(col_idx_[i]);
        if (use_simd) {
          // Elementwise axpy across the B row: per-element operation order
          // identical to the scalar loop.
          la::simd::axpy4(v, brow.data(), yrow.data(), n);
          continue;
        }
        for (std::size_t j = 0; j < n; ++j) {
          yrow[j] += v * brow[j];
        }
      }
    }
  };
  exec::Pool* pool = exec::usable_pool(2 * nnz() * n);
  if (pool == nullptr) {
    row_block(0, {0, rows_});
    return;
  }
  const int width = pool->width();
  pool->run("sparse.spmm", [&](int t) {
    const exec::Range range = exec::block_range(rows_, width, t);
    if (!range.empty()) {
      row_block(t, range);
    }
  });
}

CsrMatrix CsrMatrix::select_rows(std::span<const std::uint32_t> rows) const {
  CsrMatrix m;
  m.rows_ = rows.size();
  m.cols_ = cols_;
  m.row_ptr_.assign(rows.size() + 1, 0);
  std::size_t total = 0;
  for (auto r : rows) {
    RCF_CHECK_MSG(r < rows_, "select_rows: row out of range");
    total += row_nnz(r);
  }
  m.col_idx_.reserve(total);
  m.values_.reserve(total);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::size_t r = rows[i];
    const auto lo = static_cast<std::ptrdiff_t>(row_ptr_[r]);
    const auto hi = static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
    m.col_idx_.insert(m.col_idx_.end(), col_idx_.begin() + lo,
                      col_idx_.begin() + hi);
    m.values_.insert(m.values_.end(), values_.begin() + lo,
                     values_.begin() + hi);
    m.row_ptr_[i + 1] = m.values_.size();
  }
  return m;
}

CsrMatrix CsrMatrix::slice_rows(std::size_t begin, std::size_t end) const {
  RCF_CHECK_MSG(begin <= end && end <= rows_, "slice_rows: bad range");
  CsrMatrix m;
  m.rows_ = end - begin;
  m.cols_ = cols_;
  m.row_ptr_.assign(m.rows_ + 1, 0);
  const std::size_t base = row_ptr_[begin];
  const auto lo = static_cast<std::ptrdiff_t>(base);
  const auto hi = static_cast<std::ptrdiff_t>(row_ptr_[end]);
  m.col_idx_.assign(col_idx_.begin() + lo, col_idx_.begin() + hi);
  m.values_.assign(values_.begin() + lo, values_.begin() + hi);
  for (std::size_t r = 0; r <= m.rows_; ++r) {
    m.row_ptr_[r] = row_ptr_[begin + r] - base;
  }
  return m;
}

CsrMatrix CsrMatrix::transposed() const {
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(cols_ + 1, 0);
  t.col_idx_.resize(nnz());
  t.values_.resize(nnz());
  // Counting sort on column index.
  for (auto c : col_idx_) {
    ++t.row_ptr_[c + 1];
  }
  std::partial_sum(t.row_ptr_.begin(), t.row_ptr_.end(), t.row_ptr_.begin());
  std::vector<std::size_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      const std::size_t pos = cursor[col_idx_[i]]++;
      t.col_idx_[pos] = static_cast<std::uint32_t>(r);
      t.values_[pos] = values_[i];
    }
  }
  return t;
}

std::vector<double> CsrMatrix::to_dense() const {
  std::vector<double> dense(rows_ * cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      dense[r * cols_ + col_idx_[i]] = values_[i];
    }
  }
  return dense;
}

std::size_t CsrMatrix::memory_bytes() const {
  return row_ptr_.size() * sizeof(std::size_t) +
         col_idx_.size() * sizeof(std::uint32_t) +
         values_.size() * sizeof(double);
}

std::uint64_t CsrMatrix::sum_row_nnz_squared() const {
  std::uint64_t total = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::uint64_t k = row_nnz(r);
    total += k * k;
  }
  return total;
}

}  // namespace rcf::sparse
