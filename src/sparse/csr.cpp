#include "sparse/csr.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace rcf::sparse {

CsrMatrix CsrMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                   std::vector<Triplet> triplets) {
  for (const auto& t : triplets) {
    RCF_CHECK_MSG(t.row < rows && t.col < cols,
                  "from_triplets: entry out of bounds");
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  for (std::size_t i = 0; i < triplets.size();) {
    const std::uint32_t r = triplets[i].row;
    const std::uint32_t c = triplets[i].col;
    double v = 0.0;
    while (i < triplets.size() && triplets[i].row == r &&
           triplets[i].col == c) {
      v += triplets[i].value;  // sum duplicates
      ++i;
    }
    if (v != 0.0) {
      m.col_idx_.push_back(c);
      m.values_.push_back(v);
      ++m.row_ptr_[r + 1];
    }
  }
  std::partial_sum(m.row_ptr_.begin(), m.row_ptr_.end(), m.row_ptr_.begin());
  return m;
}

CsrMatrix CsrMatrix::from_parts(std::size_t rows, std::size_t cols,
                                std::vector<std::size_t> row_ptr,
                                std::vector<std::uint32_t> col_idx,
                                std::vector<double> values) {
  RCF_CHECK_MSG(row_ptr.size() == rows + 1, "from_parts: bad row_ptr length");
  RCF_CHECK_MSG(row_ptr.front() == 0, "from_parts: row_ptr[0] != 0");
  RCF_CHECK_MSG(row_ptr.back() == col_idx.size(),
                "from_parts: row_ptr back != nnz");
  RCF_CHECK_MSG(col_idx.size() == values.size(),
                "from_parts: col/val length mismatch");
  for (std::size_t r = 0; r < rows; ++r) {
    RCF_CHECK_MSG(row_ptr[r] <= row_ptr[r + 1],
                  "from_parts: row_ptr not monotone");
    for (std::size_t i = row_ptr[r]; i + 1 < row_ptr[r + 1]; ++i) {
      RCF_CHECK_MSG(col_idx[i] < col_idx[i + 1],
                    "from_parts: columns not strictly ascending in row");
    }
  }
  for (auto c : col_idx) {
    RCF_CHECK_MSG(c < cols, "from_parts: column index out of range");
  }
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  return m;
}

CsrMatrix CsrMatrix::from_dense(std::size_t rows, std::size_t cols,
                                std::span<const double> row_major) {
  RCF_CHECK_MSG(row_major.size() == rows * cols,
                "from_dense: buffer size mismatch");
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = row_major[r * cols + c];
      if (v != 0.0) {
        m.col_idx_.push_back(static_cast<std::uint32_t>(c));
        m.values_.push_back(v);
      }
    }
    m.row_ptr_[r + 1] = m.values_.size();
  }
  return m;
}

double CsrMatrix::density() const {
  if (rows_ == 0 || cols_ == 0) {
    return 0.0;
  }
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

void CsrMatrix::spmv(std::span<const double> x, std::span<double> y) const {
  if (x.size() != cols_ || y.size() != rows_) {
    throw DimensionMismatch("spmv: shape mismatch");
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      acc += values_[i] * x[col_idx_[i]];
    }
    y[r] = acc;
  }
}

void CsrMatrix::spmv_t(std::span<const double> x, std::span<double> y) const {
  if (x.size() != rows_ || y.size() != cols_) {
    throw DimensionMismatch("spmv_t: shape mismatch");
  }
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) {
      continue;
    }
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      y[col_idx_[i]] += xr * values_[i];
    }
  }
}

CsrMatrix CsrMatrix::select_rows(std::span<const std::uint32_t> rows) const {
  CsrMatrix m;
  m.rows_ = rows.size();
  m.cols_ = cols_;
  m.row_ptr_.assign(rows.size() + 1, 0);
  std::size_t total = 0;
  for (auto r : rows) {
    RCF_CHECK_MSG(r < rows_, "select_rows: row out of range");
    total += row_nnz(r);
  }
  m.col_idx_.reserve(total);
  m.values_.reserve(total);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::size_t r = rows[i];
    m.col_idx_.insert(m.col_idx_.end(), col_idx_.begin() + row_ptr_[r],
                      col_idx_.begin() + row_ptr_[r + 1]);
    m.values_.insert(m.values_.end(), values_.begin() + row_ptr_[r],
                     values_.begin() + row_ptr_[r + 1]);
    m.row_ptr_[i + 1] = m.values_.size();
  }
  return m;
}

CsrMatrix CsrMatrix::slice_rows(std::size_t begin, std::size_t end) const {
  RCF_CHECK_MSG(begin <= end && end <= rows_, "slice_rows: bad range");
  CsrMatrix m;
  m.rows_ = end - begin;
  m.cols_ = cols_;
  m.row_ptr_.assign(m.rows_ + 1, 0);
  const std::size_t base = row_ptr_[begin];
  m.col_idx_.assign(col_idx_.begin() + base, col_idx_.begin() + row_ptr_[end]);
  m.values_.assign(values_.begin() + base, values_.begin() + row_ptr_[end]);
  for (std::size_t r = 0; r <= m.rows_; ++r) {
    m.row_ptr_[r] = row_ptr_[begin + r] - base;
  }
  return m;
}

CsrMatrix CsrMatrix::transposed() const {
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(cols_ + 1, 0);
  t.col_idx_.resize(nnz());
  t.values_.resize(nnz());
  // Counting sort on column index.
  for (auto c : col_idx_) {
    ++t.row_ptr_[c + 1];
  }
  std::partial_sum(t.row_ptr_.begin(), t.row_ptr_.end(), t.row_ptr_.begin());
  std::vector<std::size_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      const std::size_t pos = cursor[col_idx_[i]]++;
      t.col_idx_[pos] = static_cast<std::uint32_t>(r);
      t.values_[pos] = values_[i];
    }
  }
  return t;
}

std::vector<double> CsrMatrix::to_dense() const {
  std::vector<double> dense(rows_ * cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      dense[r * cols_ + col_idx_[i]] = values_[i];
    }
  }
  return dense;
}

std::size_t CsrMatrix::memory_bytes() const {
  return row_ptr_.size() * sizeof(std::size_t) +
         col_idx_.size() * sizeof(std::uint32_t) +
         values_.size() * sizeof(double);
}

std::uint64_t CsrMatrix::sum_row_nnz_squared() const {
  std::uint64_t total = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::uint64_t k = row_nnz(r);
    total += k * k;
  }
  return total;
}

}  // namespace rcf::sparse
