#include "sparse/generate.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace rcf::sparse {

CsrMatrix generate_random(const GenerateOptions& opts) {
  RCF_CHECK_MSG(opts.rows > 0 && opts.cols > 0, "generate: empty shape");
  RCF_CHECK_MSG(opts.density > 0.0 && opts.density <= 1.0,
                "generate: density must be in (0, 1]");
  const auto per_row = static_cast<std::size_t>(std::max(
      1.0, std::round(opts.density * static_cast<double>(opts.cols))));

  std::vector<std::size_t> row_ptr(opts.rows + 1, 0);
  std::vector<std::uint32_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(opts.rows * per_row);
  values.reserve(opts.rows * per_row);

  for (std::size_t r = 0; r < opts.rows; ++r) {
    // One independent stream per row: generation is order-independent and
    // reproducible under row-partitioned parallel generation.
    Rng rng(opts.seed, /*stream=*/r);
    auto cols = rng.sample_without_replacement(opts.cols, per_row);
    for (auto c : cols) {
      col_idx.push_back(c);
      double v = rng.normal(0.0, opts.value_stddev);
      if (v == 0.0) {
        v = opts.value_stddev;  // keep structural nnz actual non-zeros
      }
      values.push_back(v);
    }
    row_ptr[r + 1] = values.size();
  }
  return CsrMatrix::from_parts(opts.rows, opts.cols, std::move(row_ptr),
                               std::move(col_idx), std::move(values));
}

}  // namespace rcf::sparse
