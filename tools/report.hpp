// rcf-report: offline analyzer for the trace / metrics / convergence files
// a traced solve writes (--trace-out / --trace-jsonl / --metrics-out /
// --conv-out, or the RCF_TRACE* environment).
//
// The analyzer is file-driven only -- it never links the solver -- so it
// can be pointed at artifacts from any run (including CI uploads).  It
// reconstructs:
//
//  * per-rank communication vs compute breakdown (span time by category),
//  * the per-phase critical path (slowest rank per span name),
//  * the cross-rank merged timeline: compute / comm / wait decomposition
//    per rank and the collective-by-collective critical path with
//    straggler attribution (obs::Timeline + obs::critical_path, aligned on
//    the collective sequence numbers the communicator stamps on spans),
//  * the rendezvous-skew distribution (allreduce_wait spans, exact
//    quantiles from the raw durations),
//  * hardware-counter roofline rows (perf.<label>.* counters emitted by
//    obs::PerfScope under RCF_PERFCTR / bench_kernels --counters),
//  * latency-histogram quantiles and aggregated agg.* views from the
//    metrics JSON,
//  * the predicted-vs-measured cost-model table (model.* gauges emitted by
//    obs::CostLedger),
//  * the convergence trace (--conv-out JSONL).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/critpath.hpp"
#include "obs/timeline.hpp"

namespace rcf::tools {

/// One span loaded from a Chrome trace or JSONL file.
struct ReportEvent {
  std::string name;
  int rank = 0;
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  double words = 0.0;
  std::int64_t seq = -1;  ///< collective sequence number (-1 = unstamped)
};

/// Per-rank time split: comm spans (allreduce / *_wait / broadcast /
/// allgather / barrier) vs everything else.
struct RankBreakdown {
  int rank = 0;
  double comm_s = 0.0;
  double compute_s = 0.0;
  double aux_s = 0.0;  ///< aux_collective / aux_wait (aggregation overhead)
  std::uint64_t spans = 0;
  [[nodiscard]] double total_s() const { return comm_s + compute_s + aux_s; }
};

/// Per-span-name totals; critical_s is the slowest single rank's total,
/// i.e. the phase's contribution to the critical path of the solve.
struct PhaseRow {
  std::string name;
  std::uint64_t count = 0;
  double total_s = 0.0;
  double critical_s = 0.0;
  double mean_rank_s = 0.0;
  double words = 0.0;
};

/// Exact quantiles of a set of span durations (microseconds).
struct DurationStats {
  std::uint64_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

/// One histogram row read from the metrics JSON.
struct HistRow {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// One predicted-vs-measured row reconstructed from model.<label>.* gauges.
struct ModelRow {
  std::string label;
  double latency_pred = 0.0, latency_meas = 0.0, latency_err = 0.0;
  double bw_pred = 0.0, bw_meas = 0.0, bw_err = 0.0;
  double flops_pred = 0.0, flops_meas = 0.0, flops_err = 0.0;
  double rounds_pred = 0.0, rounds_meas = 0.0;
  double seconds_pred = 0.0, seconds_meas = 0.0;
  double comm_pred = 0.0, comm_meas = 0.0;  ///< alpha-beta seconds
  double comm_err = 0.0, seconds_err = 0.0;
};

/// One hardware-counter sample group reconstructed from perf.<label>.*
/// counters (obs::PerfScope output).
struct RooflineRow {
  std::string label;
  double cycles = 0.0;
  double instructions = 0.0;
  double llc_misses = 0.0;
  double samples = 0.0;
  [[nodiscard]] double ipc() const {
    return cycles > 0.0 ? instructions / cycles : 0.0;
  }
};

/// One convergence sample from the --conv-out JSONL (NaN = absent).
struct ConvRow {
  std::uint64_t iteration = 0;
  double objective = 0.0;
  double grad_norm = 0.0;
  double support = 0.0;
  double step = 0.0;
};

/// A gauge named agg.* from the metrics JSON (cross-rank aggregated view).
struct AggRow {
  std::string name;
  double value = 0.0;
};

/// One resilience counter from the metrics JSON (comm.retries,
/// comm.faults_injected, comm.backoff_us, fault.*): how much fault
/// absorption the run performed.  All-zero rows are omitted, so the
/// section only appears for runs that actually retried or were injected.
struct ResilienceRow {
  std::string name;
  double value = 0.0;
};

struct Report {
  std::vector<RankBreakdown> ranks;
  std::vector<PhaseRow> phases;        ///< sorted by critical_s, descending
  DurationStats skew;                  ///< allreduce_wait durations
  std::vector<HistRow> histograms;
  std::vector<ModelRow> model;
  std::vector<AggRow> aggregated;      ///< agg.* gauges
  std::vector<ResilienceRow> resilience;  ///< nonzero retry/fault counters
  std::vector<RooflineRow> roofline;   ///< perf.<label>.* counter groups
  std::vector<ConvRow> convergence;
  std::uint64_t allreduce_spans = 0;   ///< total "allreduce" span count
  /// Cross-rank merged timeline decomposition (compute / comm / wait / aux
  /// seconds per rank) and the collective-by-collective critical path with
  /// straggler attribution; empty when no trace was loaded.
  std::vector<obs::RankTimes> decomposition;
  obs::CriticalPath critpath;
};

/// Loaders.  Each returns false and fills `error` on parse/IO failure;
/// loading is additive (events append).
bool load_chrome_trace(const std::string& path,
                       std::vector<ReportEvent>& events, std::string& error);
bool load_jsonl_trace(const std::string& path,
                      std::vector<ReportEvent>& events, std::string& error);
bool load_convergence(const std::string& path, std::vector<ConvRow>& rows,
                      std::string& error);

/// Builds the report from loaded inputs.  `metrics_json` is the raw
/// metrics file contents ("" = none; parse errors reported via `error`
/// with a false return).
bool build_report(const std::vector<ReportEvent>& events,
                  const std::string& metrics_json,
                  const std::vector<ConvRow>& convergence, Report& out,
                  std::string& error);

/// Renderers.
[[nodiscard]] std::string render_text(const Report& report);
[[nodiscard]] std::string render_markdown(const Report& report);
[[nodiscard]] std::string render_json(const Report& report);

}  // namespace rcf::tools
