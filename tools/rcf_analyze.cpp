// rcf-analyze CLI: compile-time SPMD collective-matching, determinism, and
// handle-lifecycle analyzer (see tools/analyze/analyze.hpp for the checks).
//
// Translation units come from a compile_commands.json when one is given or
// discoverable (build/compile_commands.json under --root); headers and any
// sources the compile DB misses are swept up by a directory walk over
// src/, tools/, bench/, examples/, and tests/ (minus the seeded-bad
// fixture corpus in tests/analyze/).  With --require-compdb the tool exits
// 77 -- the ctest SKIP return code -- when no compile DB exists, so the
// repo-wide analysis gate degrades to SKIP, not FAIL, on hosts that have
// not configured a build.
//
// Exit codes: 0 clean, 1 active findings (or stale baseline entries),
// 2 usage/configuration error, 77 skipped (no compile DB).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/analyze.hpp"
#include "common/json.hpp"

namespace fs = std::filesystem;
using rcf::analyze::Baseline;
using rcf::analyze::Finding;

namespace {

constexpr int kExitClean = 0;
constexpr int kExitFindings = 1;
constexpr int kExitUsage = 2;
constexpr int kExitSkip = 77;

void usage(std::ostream& os) {
  os << "usage: rcf-analyze [options] [file...]\n"
        "\n"
        "Static analyzer for the rcf SPMD contracts.  With no files, scans\n"
        "the repo under --root (compile DB translation units + headers).\n"
        "\n"
        "  --root <dir>            repo root (default: .)\n"
        "  --compdb <path>         compile_commands.json (default:\n"
        "                          <root>/build/compile_commands.json)\n"
        "  --require-compdb        exit 77 (skip) when no compile DB exists\n"
        "  --baseline <path>       suppression file (default:\n"
        "                          <root>/tools/analyze-baseline.json)\n"
        "  --no-baseline           ignore any baseline file\n"
        "  --write-baseline <path> write active findings as a baseline and\n"
        "                          exit 0\n"
        "  --sarif <path>          also write a SARIF 2.1.0 report\n"
        "  --check <name>          run only this check (repeatable)\n"
        "  --scope-as <prefix>     analyze explicit files as if they lived\n"
        "                          under this repo prefix (fixture corpus)\n"
        "  --list-checks           print the check registry and exit\n";
}

std::optional<std::string> slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// `p` made relative to `root` with POSIX separators; empty when `p` is
/// not under `root`.
std::string rel_to_root(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  if (ec || rel.empty()) {
    return {};
  }
  std::string s = rel.generic_string();
  if (s.rfind("..", 0) == 0) {
    return {};
  }
  return s;
}

bool has_source_ext(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".cpp" || e == ".cc" || e == ".cxx" || e == ".hpp" ||
         e == ".h" || e == ".hh";
}

/// The repo surface the analyzer owns.  tests/analyze/ is the seeded-bad
/// fixture corpus -- analyzed only via the fixture tests, never in the
/// repo sweep.
bool in_scanned_tree(const std::string& rel) {
  static constexpr const char* kTrees[] = {"src/", "tools/", "bench/",
                                           "examples/", "tests/"};
  if (rel.rfind("tests/analyze/", 0) == 0) {
    return false;
  }
  return std::any_of(std::begin(kTrees), std::end(kTrees),
                     [&](const char* t) { return rel.rfind(t, 0) == 0; });
}

struct Options {
  fs::path root = ".";
  fs::path compdb;        // resolved later when empty
  fs::path baseline;      // resolved later when empty
  fs::path write_baseline;
  fs::path sarif;
  std::set<std::string> checks;
  std::string scope_as;
  std::vector<fs::path> files;
  bool require_compdb = false;
  bool no_baseline = false;
  bool list_checks = false;
};

bool parse_args(int argc, char** argv, Options& opt, std::string& err) {
  const auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      err = std::string(flag) + " needs a value";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const char* v = nullptr;
    if (a == "--root") {
      if ((v = need_value(i, "--root")) == nullptr) return false;
      opt.root = v;
    } else if (a == "--compdb") {
      if ((v = need_value(i, "--compdb")) == nullptr) return false;
      opt.compdb = v;
    } else if (a == "--baseline") {
      if ((v = need_value(i, "--baseline")) == nullptr) return false;
      opt.baseline = v;
    } else if (a == "--write-baseline") {
      if ((v = need_value(i, "--write-baseline")) == nullptr) return false;
      opt.write_baseline = v;
    } else if (a == "--sarif") {
      if ((v = need_value(i, "--sarif")) == nullptr) return false;
      opt.sarif = v;
    } else if (a == "--check") {
      if ((v = need_value(i, "--check")) == nullptr) return false;
      const auto& reg = rcf::analyze::check_registry();
      const bool known = std::any_of(
          reg.begin(), reg.end(),
          [&](const rcf::analyze::CheckInfo& c) {
            return std::string_view(c.name) == v;
          });
      if (!known) {
        err = std::string("unknown check '") + v + "' (see --list-checks)";
        return false;
      }
      opt.checks.insert(v);
    } else if (a == "--scope-as") {
      if ((v = need_value(i, "--scope-as")) == nullptr) return false;
      opt.scope_as = v;
    } else if (a == "--require-compdb") {
      opt.require_compdb = true;
    } else if (a == "--no-baseline") {
      opt.no_baseline = true;
    } else if (a == "--list-checks") {
      opt.list_checks = true;
    } else if (a == "--help" || a == "-h") {
      usage(std::cout);
      std::exit(kExitClean);
    } else if (!a.empty() && a[0] == '-') {
      err = "unknown option '" + a + "'";
      return false;
    } else {
      opt.files.emplace_back(a);
    }
  }
  return true;
}

/// Translation units named by the compile DB, repo-relative.  Returns
/// false on a malformed DB.
bool compdb_files(const fs::path& compdb, const fs::path& root,
                  std::set<std::string>& out, std::string& err) {
  const auto text = slurp(compdb);
  if (!text) {
    err = compdb.string() + ": unreadable";
    return false;
  }
  const auto doc = rcf::parse_json(*text);
  if (!doc || !doc->is_array()) {
    err = compdb.string() + ": not a JSON array (compile_commands.json)";
    return false;
  }
  for (const rcf::JsonValue& entry : doc->array) {
    const std::string file = entry.string_or("file", "");
    if (file.empty()) {
      continue;
    }
    fs::path p(file);
    if (p.is_relative()) {
      p = fs::path(entry.string_or("directory", ".")) / p;
    }
    std::error_code ec;
    p = fs::weakly_canonical(p, ec);
    if (ec) {
      continue;
    }
    const std::string rel = rel_to_root(p, root);
    if (!rel.empty() && in_scanned_tree(rel)) {
      out.insert(rel);
    }
  }
  return true;
}

void walk_tree(const fs::path& root, std::set<std::string>& out) {
  for (const char* tree : {"src", "tools", "bench", "examples", "tests"}) {
    const fs::path dir = root / tree;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
      continue;
    }
    for (auto it = fs::recursive_directory_iterator(dir, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file(ec) || !has_source_ext(it->path())) {
        continue;
      }
      const std::string rel = rel_to_root(it->path(), root);
      if (!rel.empty() && in_scanned_tree(rel)) {
        out.insert(rel);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::string err;
  if (!parse_args(argc, argv, opt, err)) {
    std::cerr << "rcf-analyze: " << err << "\n";
    usage(std::cerr);
    return kExitUsage;
  }
  if (opt.list_checks) {
    for (const auto& c : rcf::analyze::check_registry()) {
      std::cout << c.name << "\t" << c.summary << "\n";
    }
    return kExitClean;
  }

  std::error_code ec;
  const fs::path root = fs::weakly_canonical(opt.root, ec);
  if (ec || !fs::is_directory(root)) {
    std::cerr << "rcf-analyze: --root " << opt.root.string()
              << " is not a directory\n";
    return kExitUsage;
  }

  // Assemble the file set.
  std::set<std::string> rel_files;           // repo-relative
  std::vector<fs::path> explicit_files;      // analyzed verbatim
  if (!opt.files.empty()) {
    explicit_files = opt.files;
  } else {
    const fs::path compdb = opt.compdb.empty()
                                ? root / "build" / "compile_commands.json"
                                : opt.compdb;
    const bool have_compdb = fs::is_regular_file(compdb, ec);
    if (opt.require_compdb && !have_compdb) {
      std::cout << "rcf-analyze: no compile database at " << compdb.string()
                << " -- skipping (configure with cmake -B build first)\n";
      return kExitSkip;
    }
    if (have_compdb) {
      if (!compdb_files(compdb, root, rel_files, err)) {
        std::cerr << "rcf-analyze: " << err << "\n";
        return kExitUsage;
      }
    } else if (!opt.compdb.empty()) {
      std::cerr << "rcf-analyze: --compdb " << opt.compdb.string()
                << " is unreadable\n";
      return kExitUsage;
    }
    // Headers (and, without a compile DB, everything) via directory walk.
    walk_tree(root, rel_files);
  }

  // Analyze.
  std::vector<Finding> findings;
  const auto analyze_one = [&](const std::string& rel_path,
                               const fs::path& disk_path,
                               std::string_view scope_as) -> bool {
    const auto text = slurp(disk_path);
    if (!text) {
      std::cerr << "rcf-analyze: cannot read " << disk_path.string() << "\n";
      return false;
    }
    const rcf::analyze::SourceFile src =
        rcf::analyze::lex_source(rel_path, *text);
    const auto fns = rcf::analyze::parse_functions(src);
    rcf::analyze::run_checks(src, fns, opt.checks, scope_as, findings);
    return true;
  };
  bool io_ok = true;
  for (const std::string& rel : rel_files) {
    io_ok = analyze_one(rel, root / rel, {}) && io_ok;
  }
  for (const fs::path& p : explicit_files) {
    std::string rel = rel_to_root(fs::weakly_canonical(p, ec), root);
    if (rel.empty()) {
      rel = p.generic_string();
    }
    io_ok = analyze_one(rel, p, opt.scope_as) && io_ok;
  }
  if (!io_ok) {
    return kExitUsage;
  }
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });

  // Baseline.
  Baseline baseline;
  if (!opt.no_baseline && opt.write_baseline.empty()) {
    const fs::path bl = opt.baseline.empty()
                            ? root / "tools" / "analyze-baseline.json"
                            : opt.baseline;
    if (!rcf::analyze::load_baseline(bl.string(), baseline, err)) {
      std::cerr << "rcf-analyze: " << err << "\n";
      return kExitUsage;
    }
    rcf::analyze::apply_baseline(baseline, findings);
  }

  if (!opt.write_baseline.empty()) {
    std::ofstream out(opt.write_baseline);
    out << rcf::analyze::render_baseline(findings);
    if (!out) {
      std::cerr << "rcf-analyze: cannot write "
                << opt.write_baseline.string() << "\n";
      return kExitUsage;
    }
    std::cout << "rcf-analyze: baseline written to "
              << opt.write_baseline.string() << "\n";
    return kExitClean;
  }

  if (!opt.sarif.empty()) {
    std::ofstream out(opt.sarif);
    out << rcf::analyze::render_sarif(findings);
    if (!out) {
      std::cerr << "rcf-analyze: cannot write " << opt.sarif.string() << "\n";
      return kExitUsage;
    }
  }

  std::string report;
  const std::size_t n_active =
      rcf::analyze::render_text(findings, baseline, report);
  std::cout << report;
  const bool stale = std::any_of(baseline.entries.begin(),
                                 baseline.entries.end(),
                                 [](const Baseline::Entry& e) {
                                   return !e.used;
                                 });
  return (n_active > 0 || stale) ? kExitFindings : kExitClean;
}
