// Structural pass for rcf-analyze: finds function definitions at namespace
// and class scope and parses each body into a statement tree (blocks,
// if/else, loops, switch, try/catch, return/throw, expression statements).
// This is deliberately a micro-parser, not a grammar: it only needs to be
// right about the shapes the checks reason over -- control-flow nesting,
// early exits, and statement token ranges -- and to fail soft (skip the
// construct) everywhere else.
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "analyze.hpp"

namespace rcf::analyze {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

bool is(const Token& t, const char* text) { return t.text == text; }

bool is_any(const Token& t, std::initializer_list<const char*> texts) {
  for (const char* s : texts) {
    if (t.text == s) {
      return true;
    }
  }
  return false;
}

struct Parser {
  const SourceFile& src;
  std::vector<Function>& out;

  [[nodiscard]] std::size_t skip_balanced(std::size_t i) const {
    // i points at an opening bracket; returns index past its match (or
    // past-the-end when unmatched, which aborts the enclosing scan).
    const std::size_t m = src.match[i];
    return m == kNone ? src.toks.size() : m + 1;
  }

  // -- statement parsing ----------------------------------------------------

  /// Parses one statement starting at `i` (< limit); returns the index past
  /// it.  Appends the parsed statement to `dst`.
  std::size_t parse_stmt(std::size_t i, std::size_t limit,
                         std::vector<Stmt>& dst) {
    const auto& toks = src.toks;
    Stmt s;
    s.begin = i;
    if (is(toks[i], "{")) {
      const std::size_t close = src.match[i];
      if (close == kNone || close > limit) {
        return limit;
      }
      s.kind = Stmt::Kind::kBlock;
      parse_block(i + 1, close, s.children);
      s.end = close + 1;
      dst.push_back(std::move(s));
      return close + 1;
    }
    if (is(toks[i], "if")) {
      std::size_t j = i + 1;
      if (j < limit && is(toks[j], "constexpr")) {
        ++j;
      }
      if (j >= limit || !is(toks[j], "(")) {
        return consume_expr(i, limit, dst);
      }
      const std::size_t close = src.match[j];
      if (close == kNone || close >= limit) {
        return limit;
      }
      s.kind = Stmt::Kind::kIf;
      s.cond_begin = j + 1;
      s.cond_end = close;
      std::size_t k = parse_stmt(close + 1, limit, s.children);
      if (k < limit && is(toks[k], "else")) {
        k = parse_stmt(k + 1, limit, s.children);
      }
      s.end = k;
      dst.push_back(std::move(s));
      return k;
    }
    if (is_any(toks[i], {"for", "while"})) {
      std::size_t j = i + 1;
      if (j < limit && is(toks[j], "(")) {
        const std::size_t close = src.match[j];
        if (close == kNone || close >= limit) {
          return limit;
        }
        s.kind = Stmt::Kind::kLoop;
        s.cond_begin = j + 1;
        s.cond_end = close;
        const std::size_t k = parse_stmt(close + 1, limit, s.children);
        s.end = k;
        dst.push_back(std::move(s));
        return k;
      }
      return consume_expr(i, limit, dst);
    }
    if (is(toks[i], "do")) {
      s.kind = Stmt::Kind::kLoop;
      std::size_t k = parse_stmt(i + 1, limit, s.children);
      // Trailer: while ( cond ) ;
      if (k < limit && is(toks[k], "while") && k + 1 < limit &&
          is(toks[k + 1], "(")) {
        const std::size_t close = src.match[k + 1];
        if (close != kNone && close < limit) {
          s.cond_begin = k + 2;
          s.cond_end = close;
          k = close + 1;
          if (k < limit && is(toks[k], ";")) {
            ++k;
          }
        }
      }
      s.end = k;
      dst.push_back(std::move(s));
      return k;
    }
    if (is(toks[i], "switch")) {
      std::size_t j = i + 1;
      if (j < limit && is(toks[j], "(")) {
        const std::size_t close = src.match[j];
        if (close == kNone || close >= limit) {
          return limit;
        }
        s.kind = Stmt::Kind::kSwitch;
        s.cond_begin = j + 1;
        s.cond_end = close;
        const std::size_t k = parse_stmt(close + 1, limit, s.children);
        s.end = k;
        dst.push_back(std::move(s));
        return k;
      }
      return consume_expr(i, limit, dst);
    }
    if (is_any(toks[i], {"return", "throw", "co_return"})) {
      s.kind = is(toks[i], "throw") ? Stmt::Kind::kThrow : Stmt::Kind::kReturn;
      const std::size_t k = scan_to_semicolon(i + 1, limit);
      s.end = k;
      dst.push_back(std::move(s));
      return k;
    }
    if (is(toks[i], "try")) {
      s.kind = Stmt::Kind::kTry;
      std::size_t k = parse_stmt(i + 1, limit, s.children);
      while (k < limit && is(toks[k], "catch")) {
        std::size_t j = k + 1;
        if (j < limit && is(toks[j], "(")) {
          const std::size_t close = src.match[j];
          if (close == kNone || close >= limit) {
            return limit;
          }
          k = parse_stmt(close + 1, limit, s.children);
        } else {
          break;
        }
      }
      s.end = k;
      dst.push_back(std::move(s));
      return k;
    }
    if (is_any(toks[i], {"case", "default"})) {
      // Consume to the label colon (skip :: which never labels).
      std::size_t j = i + 1;
      while (j < limit && !is(toks[j], ":")) {
        if (is_any(toks[j], {"(", "[", "{"})) {
          j = skip_balanced(j);
        } else {
          ++j;
        }
      }
      return j < limit ? j + 1 : limit;
    }
    if (is_any(toks[i], {";", "else"})) {
      return i + 1;  // stray separators: skip
    }
    return consume_expr(i, limit, dst);
  }

  /// Everything else: one expression/declaration statement up to its `;`.
  std::size_t consume_expr(std::size_t i, std::size_t limit,
                           std::vector<Stmt>& dst) {
    Stmt s;
    s.kind = Stmt::Kind::kExpr;
    s.begin = i;
    const std::size_t k = scan_to_semicolon(i, limit);
    s.end = k;
    dst.push_back(std::move(s));
    return k;
  }

  /// Scans to the `;` terminating the statement starting at `i`, skipping
  /// balanced (), [], {} groups (lambda bodies, brace initializers, local
  /// struct definitions ride along inside the statement's range).
  [[nodiscard]] std::size_t scan_to_semicolon(std::size_t i,
                                              std::size_t limit) const {
    std::size_t j = i;
    while (j < limit) {
      const std::string& t = src.toks[j].text;
      if (t == ";") {
        return j + 1;
      }
      if (t == "(" || t == "[" || t == "{") {
        j = skip_balanced(j);
        continue;
      }
      if (t == ")" || t == "]" || t == "}") {
        return j;  // ran off the enclosing scope: stop before it
      }
      ++j;
    }
    return limit;
  }

  void parse_block(std::size_t begin, std::size_t end,
                   std::vector<Stmt>& dst) {
    std::size_t i = begin;
    while (i < end) {
      const std::size_t next = parse_stmt(i, end, dst);
      if (next <= i) {
        break;  // no progress: bail on this block
      }
      i = next;
    }
  }

  // -- declaration-scope scanning ------------------------------------------

  /// Scans a namespace/class scope [begin, end) for function definitions,
  /// recursing into nested namespaces and class bodies.
  void scan_decl_scope(std::size_t begin, std::size_t end) {  // NOLINT(misc-no-recursion)
    const auto& toks = src.toks;
    std::size_t i = begin;
    std::size_t decl_start = begin;
    std::size_t paren_group = kNone;  // first top-level (...) of the decl
    bool saw_eq = false;
    while (i < end) {
      const std::string& t = toks[i].text;
      if (t == ";") {
        decl_start = i + 1;
        paren_group = kNone;
        saw_eq = false;
        ++i;
        continue;
      }
      if (t == "(") {
        if (paren_group == kNone && i > decl_start &&
            toks[i - 1].kind == Token::Kind::kIdent) {
          paren_group = i;
        }
        i = skip_balanced(i);
        continue;
      }
      if (t == "[") {
        i = skip_balanced(i);
        continue;
      }
      if (t == "=") {
        if (!(i > decl_start && is(toks[i - 1], "operator"))) {
          saw_eq = true;
        }
        ++i;
        continue;
      }
      if (t == ":" && paren_group != kNone && !saw_eq && i > decl_start &&
          is_any(toks[i - 1], {")", "noexcept", "const"})) {
        // Constructor initializer list: member(expr) or member{expr},
        // comma-separated, then the body brace.
        std::size_t j = i + 1;
        while (j < end) {
          if (is_any(toks[j], {"(", "{"})) {
            const std::size_t after = skip_balanced(j);
            if (after > end) {
              break;
            }
            if (after < end && is(toks[after], ",")) {
              j = after + 1;
              continue;
            }
            if (is(toks[j], "{") && src.match[j] != kNone &&
                (after >= end || !is(toks[after], "{"))) {
              // Last init used parens and the body follows, or this brace
              // *is* the body; disambiguate: if the previous token is an
              // identifier this brace is a member init, else it is the
              // body.
              if (toks[j - 1].kind == Token::Kind::kIdent) {
                j = after;  // member{...} with no comma: body comes next
                break;
              }
              break;
            }
            j = after;
            break;
          }
          ++j;
        }
        i = j;
        continue;
      }
      if (t == "{") {
        const std::size_t close = src.match[i];
        if (close == kNone || close > end) {
          return;
        }
        // Classify this brace from the declaration prefix.
        const char* scope_kw = nullptr;
        for (std::size_t j = decl_start; j < i; ++j) {
          if (is_any(toks[j], {"namespace", "class", "struct", "union",
                               "enum", "extern"})) {
            scope_kw = "scope";
            break;
          }
          if (is(toks[j], "(")) {
            break;  // parameters before any scope keyword: a function
          }
        }
        if (scope_kw != nullptr && paren_group == kNone) {
          scan_decl_scope(i + 1, close);  // namespace/class body: recurse
          i = close + 1;
          // Class tails (`} name;`) keep the decl open until ';'.
          continue;
        }
        if (saw_eq || paren_group == kNone) {
          i = close + 1;  // initializer or unrecognized brace: skip
          continue;
        }
        // Function definition.
        Function fn;
        fn.name = toks[paren_group - 1].text;
        fn.line = toks[i].line;
        fn.body_begin = i + 1;
        fn.body_end = close;
        fn.body.kind = Stmt::Kind::kBlock;
        fn.body.begin = i + 1;
        fn.body.end = close;
        parse_block(i + 1, close, fn.body.children);
        out.push_back(std::move(fn));
        i = close + 1;
        decl_start = i;
        paren_group = kNone;
        saw_eq = false;
        continue;
      }
      ++i;
    }
  }
};

}  // namespace

std::vector<Function> parse_functions(const SourceFile& src) {
  std::vector<Function> out;
  if (!src.balanced) {
    return out;
  }
  Parser parser{src, out};
  parser.scan_decl_scope(0, src.toks.size());
  return out;
}

}  // namespace rcf::analyze
