// rcf-analyze: compile-time SPMD collective-matching, determinism, and
// handle-lifecycle analyzer.
//
// The runtime verification layer (src/check) proves the SPMD contracts on
// the paths a test happens to execute; this tool proves the mechanically
// checkable slices of the same contracts over *all* paths, before the code
// ever runs.  Four project-specific checks (see DESIGN.md "Static
// analysis"):
//
//   collective-divergence      a Communicator collective issued under
//                              control flow conditioned on rank() or a
//                              rank-derived value desynchronizes the SPMD
//                              schedule (MPI-Checker-style matching).
//   nondeterministic-reduction float arithmetic, unordered-container
//                              iteration, or accumulation into shared state
//                              inside exec::parallel_for / Pool::run bodies
//                              or the src/la + src/sparse kernels violates
//                              the pool's bit-identity contract.
//   handle-leak                a posted CommHandle (iallreduce_*) must be
//                              waited on every path, including early
//                              returns and throw sites; an abandoned handle
//                              stalls ThreadComm quiescence.
//   telemetry-discipline       TelemetryRing is SPSC and owned by src/obs;
//                              direct ring access elsewhere, naked
//                              std::thread outside exec/dist, and ambient
//                              RNG / wall-clock seeding outside src/common
//                              break the ownership and replay contracts.
//
// Frontend: a self-contained C++ lexer + structural parser ("micro-AST":
// function bodies, statement trees, brace/paren matching) rather than
// LibTooling -- the supported toolchain image ships llvm-dev without the
// clang AST headers, and the checks only need project-idiom facts.  The
// check layer consumes the frontend-neutral SourceFile/Function/Stmt facts
// below, so a LibTooling frontend can replace the micro-parser wholesale on
// hosts that have clang dev headers without touching the checks.
//
// A line opts out with a trailing `// rcf-analyze: allow(<check>)` comment
// (counted and reported, like tools/rcf-lint waivers); whole findings can
// be suppressed by the annotated baseline file tools/analyze-baseline.json
// with zero tolerance for *new* findings.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace rcf::analyze {

// ---------------------------------------------------------------------------
// Lexing.

struct Token {
  enum class Kind { kIdent, kPunct, kNumber, kString, kChar };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 0;
};

/// One lexed translation unit (or header, analyzed standalone).
struct SourceFile {
  std::string path;  ///< repo-relative, POSIX separators (drives check scope)
  std::vector<Token> toks;
  /// For toks[i] an opening (closing) bracket of ()[]{}: index of its
  /// match; SIZE_MAX when unmatched.
  std::vector<std::size_t> match;
  std::vector<std::string> lines;  ///< raw source lines, for excerpts
  /// line -> checks waived on that line via `// rcf-analyze: allow(...)`.
  std::map<int, std::set<std::string>> allows;
  bool balanced = true;  ///< false when brackets never matched up
};

/// Lexes `text` (comments and preprocessor lines stripped, strings kept as
/// single tokens, multi-char operators fused) and computes bracket matches.
[[nodiscard]] SourceFile lex_source(std::string path, std::string_view text);

// ---------------------------------------------------------------------------
// Structure ("micro-AST").

/// One statement inside a function body.  Token ranges are [begin, end)
/// indices into SourceFile::toks.
struct Stmt {
  enum class Kind { kBlock, kIf, kLoop, kSwitch, kReturn, kThrow, kTry, kExpr };
  Kind kind = Kind::kExpr;
  std::size_t begin = 0, end = 0;
  std::size_t cond_begin = 0, cond_end = 0;  ///< if/loop/switch condition
  /// kBlock: the statements; kIf: [then, else?]; kLoop/kSwitch: [body];
  /// kTry: [block, handler...].
  std::vector<Stmt> children;
};

struct Function {
  std::string name;
  int line = 0;
  std::size_t body_begin = 0, body_end = 0;  ///< tokens inside the braces
  Stmt body;                                 ///< Kind::kBlock
};

/// All function definitions (free, member, constructor) found at namespace
/// or class scope, each with its parsed statement tree.  Degrades to an
/// empty list on files the micro-parser cannot structure (the flat check
/// slices still run).
[[nodiscard]] std::vector<Function> parse_functions(const SourceFile& src);

// ---------------------------------------------------------------------------
// Checks.

struct CheckInfo {
  const char* name;
  const char* summary;
};

/// The four registered checks, in report order.
[[nodiscard]] const std::vector<CheckInfo>& check_registry();

struct Finding {
  std::string check;
  std::string file;
  int line = 0;
  std::string message;
  std::string excerpt;    ///< trimmed source line (baseline match key)
  bool waived = false;    ///< inline rcf-analyze: allow(...)
  bool baselined = false; ///< matched a suppression-file entry
};

/// True when the finding still demands action (not waived, not baselined).
[[nodiscard]] inline bool active(const Finding& f) {
  return !f.waived && !f.baselined;
}

/// Runs every check in `only` (empty = all) over one lexed + parsed file.
/// Path-based scoping uses src.path; pass `scope_as` to analyze a file as
/// if it lived under another repo prefix (the fixture corpus under
/// tests/analyze/ uses this to exercise src/-scoped checks).
void run_checks(const SourceFile& src, const std::vector<Function>& fns,
                const std::set<std::string>& only, std::string_view scope_as,
                std::vector<Finding>& out);

/// Convenience: lex + parse + run all checks on an in-memory source.
[[nodiscard]] std::vector<Finding> analyze_text(std::string path,
                                                std::string_view text,
                                                std::string_view scope_as = {});

// ---------------------------------------------------------------------------
// Baseline (annotated suppression file).

struct Baseline {
  struct Entry {
    std::string check;
    std::string file;
    std::string excerpt;
    std::string note;
    bool used = false;
  };
  std::vector<Entry> entries;
};

/// Parses tools/analyze-baseline.json.  Returns false (with `err` set) on
/// unreadable or malformed input; a missing file is *not* an error and
/// yields an empty baseline.
[[nodiscard]] bool load_baseline(const std::string& path, Baseline& out,
                                 std::string& err);

/// Marks findings that match a baseline entry (check + file + excerpt) as
/// baselined and flags the entries used.  New findings stay active: the
/// baseline is zero-tolerance for anything it does not already name.
void apply_baseline(Baseline& baseline, std::vector<Finding>& findings);

/// Serializes the *active* findings as a baseline document (the
/// --write-baseline round-trip; every entry carries a needs-review note).
[[nodiscard]] std::string render_baseline(const std::vector<Finding>& findings);

// ---------------------------------------------------------------------------
// Reports.

/// SARIF 2.1.0 document over all findings (waived/baselined results are
/// included as suppressed so dashboards can show the full picture).
[[nodiscard]] std::string render_sarif(const std::vector<Finding>& findings);

/// Human-readable report; returns the number of active findings.
std::size_t render_text(const std::vector<Finding>& findings,
                        const Baseline& baseline, std::string& out);

}  // namespace rcf::analyze
