// The four rcf-analyze checks.  Each consumes the frontend-neutral facts
// (token stream + statement trees) and path-scopes itself the way the
// contracts are scoped:
//
//   collective-divergence      src/, tools/, bench/, examples/ minus
//                              src/dist/ (the backends implement the
//                              collectives and are legitimately
//                              rank-conditional inside).
//   nondeterministic-reduction src/ (kernel-file slices only in src/la +
//                              src/sparse; parallel-body slices anywhere).
//   handle-leak                src/, tools/, bench/, examples/ (tests
//                              deliberately exercise abandon semantics).
//   telemetry-discipline       threads: src/ minus exec+dist; RNG: src/
//                              minus common, plus tests/ + tools/; rings:
//                              src/ minus obs.
#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analyze.hpp"

namespace rcf::analyze {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

bool starts(std::string_view path, std::string_view prefix) {
  return path.substr(0, prefix.size()) == prefix;
}

bool in_any(const std::string& s, std::initializer_list<const char*> set) {
  return std::any_of(set.begin(), set.end(),
                     [&](const char* x) { return s == x; });
}

/// Communicator entry points (including every decorator: CheckedComm,
/// RetryingComm, FaultyComm override the same virtuals) plus the wrappers
/// that perform collectives internally.
bool is_collective_name(const std::string& s) {
  return in_any(s, {"allreduce_sum", "allreduce_max", "allreduce_sum_scalar",
                    "allreduce_max_scalar", "iallreduce_sum",
                    "iallreduce_max", "broadcast", "allgather", "barrier",
                    "aggregate"});
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return std::string(s.substr(b, e - b));
}

struct Ctx {
  const SourceFile& src;
  std::string_view scope;  ///< effective path for scoping rules
  std::vector<Finding>& out;

  [[nodiscard]] const Token& tok(std::size_t i) const { return src.toks[i]; }
  [[nodiscard]] std::size_t size() const { return src.toks.size(); }

  void emit(const char* check, int line, std::string msg) {
    Finding f;
    f.check = check;
    f.file = src.path;
    f.line = line;
    f.message = std::move(msg);
    if (line >= 1 && static_cast<std::size_t>(line) <= src.lines.size()) {
      f.excerpt = trim(src.lines[static_cast<std::size_t>(line) - 1]);
    }
    const auto it = src.allows.find(line);
    f.waived = it != src.allows.end() && it->second.count(check) != 0;
    out.push_back(std::move(f));
  }
};

// ---------------------------------------------------------------------------
// collective-divergence.

struct DivergenceCheck {
  Ctx& ctx;
  std::set<std::string> taint;  ///< idents derived from rank()

  /// `rank` immediately followed by `()` -- a rank() call through any
  /// receiver (comm.rank(), group.rank(), bare rank()).
  [[nodiscard]] bool rank_call_at(std::size_t i) const {
    return ctx.tok(i).kind == Token::Kind::kIdent &&
           ctx.tok(i).text == "rank" && i + 2 < ctx.size() &&
           ctx.tok(i + 1).text == "(" && ctx.tok(i + 2).text == ")";
  }

  [[nodiscard]] bool range_tainted(std::size_t b, std::size_t e) const {
    for (std::size_t i = b; i < e; ++i) {
      if (rank_call_at(i)) {
        return true;
      }
      if (ctx.tok(i).kind == Token::Kind::kIdent &&
          taint.count(ctx.tok(i).text) != 0) {
        return true;
      }
    }
    return false;
  }

  /// Propagates taint through `lhs = ...rank-derived...` assignments and
  /// initializations inside the function (two fixpoint passes cover the
  /// chains that occur in practice).
  void collect_taint(const Stmt& s) {
    gather(s);
    gather(s);
  }

  void gather(const Stmt& s) {  // NOLINT(misc-no-recursion)
    if (s.kind == Stmt::Kind::kExpr) {
      assign_scan(s.begin, s.end);
    }
    if (s.cond_end > s.cond_begin) {
      assign_scan(s.cond_begin, s.cond_end);  // for-init clauses
    }
    for (const Stmt& c : s.children) {
      gather(c);
    }
  }

  void assign_scan(std::size_t b, std::size_t e) {
    int depth = 0;
    for (std::size_t i = b; i < e; ++i) {
      const std::string& t = ctx.tok(i).text;
      if (t == "(" || t == "[" || t == "{") {
        ++depth;
      } else if (t == ")" || t == "]" || t == "}") {
        --depth;
      } else if (t == "=" && depth == 0 && i > b &&
                 ctx.tok(i - 1).kind == Token::Kind::kIdent) {
        if (range_tainted(i + 1, e)) {
          taint.insert(ctx.tok(i - 1).text);
        }
      }
    }
  }

  void flag_collectives(std::size_t b, std::size_t e, int div_line) {
    for (std::size_t i = b; i < e; ++i) {
      if (ctx.tok(i).kind == Token::Kind::kIdent &&
          is_collective_name(ctx.tok(i).text) && i + 1 < e &&
          ctx.tok(i + 1).text == "(") {
        ctx.emit("collective-divergence", ctx.tok(i).line,
                 "collective '" + ctx.tok(i).text +
                     "' reachable only under rank-divergent control flow "
                     "(condition at line " +
                     std::to_string(div_line) +
                     "): every rank must issue the same collective "
                     "schedule or the SPMD rendezvous deadlocks");
      }
    }
  }

  void walk(const Stmt& s, bool diverged, int div_line) {  // NOLINT(misc-no-recursion)
    switch (s.kind) {
      case Stmt::Kind::kIf:
      case Stmt::Kind::kLoop:
      case Stmt::Kind::kSwitch: {
        bool d = diverged;
        int dl = div_line;
        if (!d && s.cond_end > s.cond_begin &&
            range_tainted(s.cond_begin, s.cond_end)) {
          d = true;
          dl = ctx.tok(s.cond_begin).line;
        }
        for (const Stmt& c : s.children) {
          walk(c, d, dl);
        }
        break;
      }
      case Stmt::Kind::kBlock:
      case Stmt::Kind::kTry:
        for (const Stmt& c : s.children) {
          walk(c, diverged, div_line);
        }
        break;
      case Stmt::Kind::kReturn:
      case Stmt::Kind::kThrow:
      case Stmt::Kind::kExpr:
        if (diverged) {
          flag_collectives(s.begin, s.end, div_line);
        } else {
          ternary_scan(s.begin, s.end);
        }
        break;
    }
  }

  /// `cond ? a : b` with a rank-tainted cond and a collective in a branch.
  void ternary_scan(std::size_t b, std::size_t e) {
    int depth = 0;
    for (std::size_t i = b; i < e; ++i) {
      const std::string& t = ctx.tok(i).text;
      if (t == "(" || t == "[" || t == "{") {
        ++depth;
      } else if (t == ")" || t == "]" || t == "}") {
        --depth;
      } else if (t == "?" && depth == 0) {
        if (range_tainted(b, i)) {
          flag_collectives(i + 1, e, ctx.tok(i).line);
        }
        return;
      }
    }
  }

  void run(const std::vector<Function>& fns) {
    for (const Function& fn : fns) {
      taint.clear();
      collect_taint(fn.body);
      walk(fn.body, false, 0);
    }
  }
};

// ---------------------------------------------------------------------------
// nondeterministic-reduction.

struct ReductionCheck {
  Ctx& ctx;
  std::set<std::string> unordered_vars;

  void collect_unordered_vars() {
    for (std::size_t i = 0; i < ctx.size(); ++i) {
      if (ctx.tok(i).kind != Token::Kind::kIdent ||
          !in_any(ctx.tok(i).text,
                  {"unordered_map", "unordered_set", "unordered_multimap",
                   "unordered_multiset"})) {
        continue;
      }
      std::size_t j = i + 1;
      if (j < ctx.size() && ctx.tok(j).text == "<") {
        int depth = 1;
        ++j;
        std::size_t guard = 0;
        while (j < ctx.size() && depth > 0 && guard++ < 200) {
          if (ctx.tok(j).text == "<") {
            ++depth;
          } else if (ctx.tok(j).text == ">") {
            --depth;
          } else if (ctx.tok(j).text == ";" || ctx.tok(j).text == "{") {
            break;  // `a < b` comparison, not template args
          }
          ++j;
        }
      }
      while (j < ctx.size() && (ctx.tok(j).text == "&" ||
                                ctx.tok(j).text == "*" ||
                                ctx.tok(j).text == "const")) {
        ++j;  // `const unordered_map<K, V>& name`
      }
      if (j < ctx.size() && ctx.tok(j).kind == Token::Kind::kIdent) {
        unordered_vars.insert(ctx.tok(j).text);
      }
    }
  }

  void scan_region(std::size_t b, std::size_t e, const char* where,
                   const std::set<std::string>* locals) {
    for (std::size_t i = b; i < e; ++i) {
      const Token& t = ctx.tok(i);
      if (t.kind != Token::Kind::kIdent) {
        // Shared-state accumulation: `x += ...` (or ++/--) where x is not
        // declared inside the parallel body and not an indexed write into
        // a partitioned output range.
        if (locals != nullptr &&
            in_any(t.text, {"+=", "-=", "*=", "/=", "&=", "|=", "^=", "<<=",
                            ">>=", "++", "--"}) &&
            i > b) {
          const Token& prev = ctx.tok(i - 1);
          if (prev.kind == Token::Kind::kIdent) {
            // Resolve `a.b.c += ...` to the base object `a`.
            std::size_t base = i - 1;
            while (base >= b + 2 && (ctx.tok(base - 1).text == "." ||
                                     ctx.tok(base - 1).text == "->") &&
                   ctx.tok(base - 2).kind == Token::Kind::kIdent) {
              base -= 2;
            }
            const std::string& name = ctx.tok(base).text;
            if (locals->count(name) == 0) {
              ctx.emit("nondeterministic-reduction", t.line,
                       "accumulation into shared '" + name + "' inside " +
                           where +
                           ": reductions must partition the *output* range "
                           "(bit-identity across pool widths) -- a shared "
                           "accumulator reassociates with the pool width");
            }
          }
        }
        continue;
      }
      if (t.text == "float") {
        ctx.emit("nondeterministic-reduction", t.line,
                 std::string("float arithmetic in ") + where +
                     ": the bitwise replay contract is stated over double; "
                     "float accumulation changes summation error with "
                     "blocking/width");
      }
      if (unordered_vars.count(t.text) != 0) {
        // Iteration: range-for `: var` or `var.begin()`.
        const bool range_for = i > b && ctx.tok(i - 1).text == ":";
        const bool begin_call = i + 3 < e && ctx.tok(i + 1).text == "." &&
                                ctx.tok(i + 2).text == "begin" &&
                                ctx.tok(i + 3).text == "(";
        if (range_for || begin_call) {
          ctx.emit("nondeterministic-reduction", t.line,
                   "iteration over unordered container '" + t.text +
                       "' in " + where +
                       ": visit order is hash/libc++-dependent, so any "
                       "floating-point reduction over it is not "
                       "replayable -- iterate a sorted view instead");
        }
      }
    }
  }

  /// Extracts lambda bodies inside a parallel dispatch call's argument
  /// range and scans each with its locals (captures-by-value included as
  /// shared: the pool shares one closure object across threads).
  void scan_parallel_call(std::size_t args_begin, std::size_t args_end,
                          const char* where) {
    for (std::size_t i = args_begin; i < args_end; ++i) {
      if (ctx.tok(i).text != "[") {
        continue;
      }
      const std::size_t close_capture = ctx.src.match[i];
      if (close_capture == kNone || close_capture >= args_end) {
        continue;
      }
      std::size_t j = close_capture + 1;
      std::set<std::string> locals;
      if (j < args_end && ctx.tok(j).text == "(") {
        const std::size_t close_params = ctx.src.match[j];
        if (close_params == kNone || close_params >= args_end) {
          continue;
        }
        // Parameter names: the identifier right before ',' or ')'.
        for (std::size_t p = j + 1; p <= close_params; ++p) {
          if ((ctx.tok(p).text == "," || p == close_params) && p > j + 1 &&
              ctx.tok(p - 1).kind == Token::Kind::kIdent) {
            locals.insert(ctx.tok(p - 1).text);
          }
        }
        j = close_params + 1;
      }
      while (j < args_end && (in_any(ctx.tok(j).text,
                                     {"mutable", "noexcept", "->"}) ||
                              ctx.tok(j).kind == Token::Kind::kIdent ||
                              ctx.tok(j).text == "::" ||
                              ctx.tok(j).text == "&" ||
                              ctx.tok(j).text == "*")) {
        ++j;  // specifiers / trailing return type
      }
      if (j >= args_end || ctx.tok(j).text != "{") {
        continue;
      }
      const std::size_t body_end = ctx.src.match[j];
      if (body_end == kNone || body_end > args_end) {
        continue;
      }
      collect_body_locals(j + 1, body_end, locals);
      scan_region(j + 1, body_end, where, &locals);
      i = body_end;
    }
  }

  void collect_body_locals(std::size_t b, std::size_t e,
                           std::set<std::string>& locals) {
    for (std::size_t i = b + 1; i < e; ++i) {
      if (ctx.tok(i).kind != Token::Kind::kIdent) {
        continue;
      }
      const Token& prev = ctx.tok(i - 1);
      const bool after_type =
          prev.kind == Token::Kind::kIdent &&
          in_any(prev.text, {"auto", "double", "int", "long", "unsigned",
                             "short", "bool", "char", "size_t", "ptrdiff_t",
                             "int8_t", "int16_t", "int32_t", "int64_t",
                             "uint8_t", "uint16_t", "uint32_t", "uint64_t",
                             // la::simd vector type: a body-local V4 is a
                             // fixed-order intra-block accumulator (lanes
                             // combine only through hsum), which the
                             // determinism contract allows.
                             "V4", "Range"});
      const bool after_ref = prev.text == "&" || prev.text == "*";
      if ((after_type || after_ref) && i + 1 < e &&
          in_any(ctx.tok(i + 1).text, {"=", ";", "{", "("})) {
        locals.insert(ctx.tok(i).text);
      }
    }
  }

  void run() {
    collect_unordered_vars();
    const bool kernel_file = starts(ctx.scope, "src/la/") ||
                             starts(ctx.scope, "src/sparse/");
    if (kernel_file) {
      scan_region(0, ctx.size(), "a reduction-kernel file (src/la, "
                                 "src/sparse)", nullptr);
    }
    // Parallel dispatch bodies anywhere in src/: exec::parallel_for and
    // Pool::run (receiver named *pool*).
    for (std::size_t i = 0; i < ctx.size(); ++i) {
      if (ctx.tok(i).kind != Token::Kind::kIdent) {
        continue;
      }
      bool dispatch = false;
      if (ctx.tok(i).text == "parallel_for" && i + 1 < ctx.size() &&
          ctx.tok(i + 1).text == "(") {
        dispatch = true;
      } else if (ctx.tok(i).text == "run" && i + 1 < ctx.size() &&
                 ctx.tok(i + 1).text == "(" && i >= 2 &&
                 (ctx.tok(i - 1).text == "." || ctx.tok(i - 1).text == "->") &&
                 ctx.tok(i - 2).kind == Token::Kind::kIdent &&
                 ctx.tok(i - 2).text.find("pool") != std::string::npos) {
        dispatch = true;
      }
      if (!dispatch) {
        continue;
      }
      const std::size_t close = ctx.src.match[i + 1];
      if (close == kNone) {
        continue;
      }
      scan_parallel_call(i + 2, close, "an exec parallel body");
      i = close;
    }
  }
};

// ---------------------------------------------------------------------------
// handle-leak.

struct HandleCheck {
  Ctx& ctx;

  struct FnState {
    std::set<std::string> containers;         ///< declared handle containers
    std::set<std::string> posted_containers;  ///< with at least one post
    std::set<std::string> satisfied_containers;
    std::map<std::string, int> pending;  ///< scalar handle -> post line
  };

  [[nodiscard]] bool is_post_name(const std::string& s) const {
    return s == "iallreduce_sum" || s == "iallreduce_max";
  }

  /// The start of the receiver chain `a.b.iallreduce_sum` ending at `i`.
  [[nodiscard]] std::size_t chain_start(std::size_t i, std::size_t b) const {
    std::size_t s = i;
    while (s >= b + 2 && (ctx.tok(s - 1).text == "." ||
                          ctx.tok(s - 1).text == "->") &&
           ctx.tok(s - 2).kind == Token::Kind::kIdent) {
      s -= 2;
    }
    return s;
  }

  void declare_handles(std::size_t b, std::size_t e, FnState& st) {
    for (std::size_t i = b; i < e; ++i) {
      if (ctx.tok(i).text != "CommHandle") {
        continue;
      }
      if (i + 1 >= e) {
        continue;
      }
      if (ctx.tok(i + 1).kind == Token::Kind::kIdent) {
        // scalar decl: registered lazily at post time (a declared-but-
        // never-posted handle is inert).
        continue;
      }
      if (ctx.tok(i + 1).text == ">") {
        std::size_t j = i + 2;
        while (j < e && ctx.tok(j).text == ">") {
          ++j;
        }
        if (j < e && ctx.tok(j).kind == Token::Kind::kIdent) {
          st.containers.insert(ctx.tok(j).text);
        }
      }
    }
  }

  void process_expr(std::size_t b, std::size_t e, FnState& st) {
    for (std::size_t i = b; i < e; ++i) {
      const Token& t = ctx.tok(i);
      if (t.kind != Token::Kind::kIdent) {
        continue;
      }
      // X.wait( / X[..].wait( clears.
      if (i + 2 < e && ctx.tok(i + 1).text == "." &&
          ctx.tok(i + 2).text == "wait") {
        st.pending.erase(t.text);
        if (st.containers.count(t.text) != 0) {
          st.satisfied_containers.insert(t.text);
        }
        continue;
      }
      if (i + 1 < e && ctx.tok(i + 1).text == "[") {
        const std::size_t close = ctx.src.match[i + 1];
        if (close != kNone && close + 2 < e &&
            ctx.tok(close + 1).text == "." &&
            ctx.tok(close + 2).text == "wait") {
          st.satisfied_containers.insert(t.text);
          continue;
        }
      }
      // std::move(X) consumes.
      if (t.text == "move" && i + 3 < e && ctx.tok(i + 1).text == "(" &&
          ctx.tok(i + 2).kind == Token::Kind::kIdent &&
          ctx.tok(i + 3).text == ")") {
        st.pending.erase(ctx.tok(i + 2).text);
        st.satisfied_containers.insert(ctx.tok(i + 2).text);
        continue;
      }
      // f(X) / f(..., X, ...) consumes (Communicator::wait(handle), helper
      // takes ownership); range-for over a container counts as visiting it.
      if (st.pending.count(t.text) != 0 && i > b &&
          (ctx.tok(i - 1).text == "(" || ctx.tok(i - 1).text == ",") &&
          i + 1 < e &&
          (ctx.tok(i + 1).text == ")" || ctx.tok(i + 1).text == ",")) {
        st.pending.erase(t.text);
        continue;
      }
      if (st.containers.count(t.text) != 0 && i > b &&
          (ctx.tok(i - 1).text == ":" || ctx.tok(i - 1).text == "(" ||
           ctx.tok(i - 1).text == ",")) {
        st.satisfied_containers.insert(t.text);
      }
      // Posts.
      if (is_post_name(t.text) && i + 1 < e && ctx.tok(i + 1).text == "(") {
        resolve_post(i, b, st);
      }
      // Reassignment of a pending scalar without an intervening wait.
      if (st.pending.count(t.text) != 0 && i + 1 < e &&
          ctx.tok(i + 1).text == "=") {
        bool rhs_posts = false;
        bool rhs_inert = false;
        for (std::size_t j = i + 2; j < e; ++j) {
          if (is_post_name(ctx.tok(j).text)) {
            rhs_posts = true;
            break;
          }
          if (ctx.tok(j).text == "CommHandle") {
            rhs_inert = true;
          }
        }
        if (rhs_posts) {
          ctx.emit("handle-leak", t.line,
                   "'" + t.text +
                       "' reposted while its previous collective (posted at "
                       "line " +
                       std::to_string(st.pending[t.text]) +
                       ") was never waited: the first result is abandoned "
                       "and ThreadComm quiescence can stall on it");
          // fall through: resolve_post re-arms pending at the new line.
        } else if (rhs_inert) {
          ctx.emit("handle-leak", t.line,
                   "'" + t.text +
                       "' reset to an inert CommHandle without wait() "
                       "(posted at line " +
                       std::to_string(st.pending[t.text]) +
                       "): the posted collective's completion is abandoned");
          st.pending.erase(t.text);
        }
      }
    }
  }

  void resolve_post(std::size_t i, std::size_t b, FnState& st) {
    if (ctx.tok(b).text == "return") {
      return;  // ownership transfers to the caller (either ternary arm)
    }
    const std::size_t start = chain_start(i, b);
    // Walk backward from the receiver chain to the expression's consumer,
    // skipping balanced groups and ternary/operand tokens, so
    // `h = cond ? a.iallreduce_sum(..) : b.iallreduce_sum(..)` resolves to
    // the assignment target and `f(comm.iallreduce_sum(..))` to the call.
    std::size_t j = start;
    while (j > b) {
      const Token& t = ctx.tok(j - 1);
      if (t.text == ")" || t.text == "]" || t.text == "}") {
        const std::size_t open = ctx.src.match[j - 1];
        if (open == kNone || open < b) {
          break;
        }
        j = open;
        continue;
      }
      if (t.text == "=") {
        const Token& target = ctx.tok(j - 2);
        if (j >= b + 2 && target.text == "]") {
          // handles[slot] = ...: container post.
          const std::size_t open = ctx.src.match[j - 2];
          if (open != kNone && open > b &&
              ctx.tok(open - 1).kind == Token::Kind::kIdent) {
            const std::string& name = ctx.tok(open - 1).text;
            st.containers.insert(name);
            st.posted_containers.insert(name);
          }
        } else if (j >= b + 2 && target.kind == Token::Kind::kIdent) {
          st.pending[target.text] = ctx.tok(i).line;
        }
        return;
      }
      if (t.text == "(" || t.text == ",") {
        // Consumed by an enclosing call.  push_back/emplace_back onto a
        // container counts as a container post.
        if (t.text == "(" && j >= b + 2 &&
            ctx.tok(j - 2).kind == Token::Kind::kIdent &&
            in_any(ctx.tok(j - 2).text, {"push_back", "emplace_back"})) {
          const std::size_t recv = chain_start(j - 2, b);
          if (ctx.tok(recv).kind == Token::Kind::kIdent) {
            st.containers.insert(ctx.tok(recv).text);
            st.posted_containers.insert(ctx.tok(recv).text);
          }
        }
        return;  // some callee owns the handle now
      }
      if (t.text == "return") {
        return;  // a nested lambda returns the handle to its caller
      }
      if (t.text == ";" || t.text == "{") {
        break;
      }
      --j;  // operands, `?`, `:`, operators: keep walking out
    }
    // Nothing consumes the handle: discarded outright.
    ctx.emit("handle-leak", ctx.tok(i).line,
             "result of '" + ctx.tok(i).text +
                 "' discarded: hold the CommHandle and wait() it (or use "
                 "the blocking form)");
  }

  [[nodiscard]] bool mentions(std::size_t b, std::size_t e,
                              const std::string& name) const {
    for (std::size_t i = b; i < e; ++i) {
      if (ctx.tok(i).kind == Token::Kind::kIdent && ctx.tok(i).text == name) {
        return true;
      }
    }
    return false;
  }

  void exit_check(const Stmt& s, FnState& st, const char* what) {
    for (const auto& [name, line] : st.pending) {
      if (mentions(s.begin, s.end, name)) {
        continue;  // `return h;` hands the handle to the caller
      }
      ctx.emit("handle-leak", ctx.tok(s.begin).line,
               std::string(what) + " while '" + name +
                   "' (posted at line " + std::to_string(line) +
                   ") is still in flight: wait() it on every path or the "
                   "endpoint never quiesces");
    }
    st.pending.clear();
  }

  void merge(FnState& into, const FnState& other) {
    for (const auto& [name, line] : other.pending) {
      into.pending.emplace(name, line);
    }
    into.containers.insert(other.containers.begin(), other.containers.end());
    into.posted_containers.insert(other.posted_containers.begin(),
                                  other.posted_containers.end());
    into.satisfied_containers.insert(other.satisfied_containers.begin(),
                                     other.satisfied_containers.end());
  }

  void walk(const Stmt& s, FnState& st) {  // NOLINT(misc-no-recursion)
    switch (s.kind) {
      case Stmt::Kind::kExpr:
        process_expr(s.begin, s.end, st);
        break;
      case Stmt::Kind::kReturn:
        process_expr(s.begin, s.end, st);
        exit_check(s, st, "early return");
        break;
      case Stmt::Kind::kThrow:
        exit_check(s, st, "throw");
        break;
      case Stmt::Kind::kIf: {
        if (s.cond_end > s.cond_begin) {
          process_expr(s.cond_begin, s.cond_end, st);
        }
        FnState then_st = st;
        if (!s.children.empty()) {
          walk(s.children[0], then_st);
        }
        FnState else_st = st;
        if (s.children.size() > 1) {
          walk(s.children[1], else_st);
        }
        st = FnState{};
        merge(st, then_st);
        merge(st, else_st);
        break;
      }
      case Stmt::Kind::kLoop:
      case Stmt::Kind::kSwitch: {
        if (s.cond_end > s.cond_begin) {
          process_expr(s.cond_begin, s.cond_end, st);
        }
        FnState body_st = st;
        for (const Stmt& c : s.children) {
          walk(c, body_st);
        }
        merge(st, body_st);
        break;
      }
      case Stmt::Kind::kBlock:
        for (const Stmt& c : s.children) {
          walk(c, st);
        }
        break;
      case Stmt::Kind::kTry: {
        FnState merged;
        for (const Stmt& c : s.children) {
          FnState branch = st;
          walk(c, branch);
          merge(merged, branch);
        }
        st = std::move(merged);
        break;
      }
    }
  }

  void run(const std::vector<Function>& fns) {
    for (const Function& fn : fns) {
      FnState st;
      declare_handles(fn.body_begin, fn.body_end, st);
      walk(fn.body, st);
      const int close_line = fn.body_end < ctx.size()
                                 ? ctx.tok(fn.body_end).line
                                 : fn.line;
      for (const auto& [name, line] : st.pending) {
        ctx.emit("handle-leak", close_line,
                 "'" + name + "' (posted at line " + std::to_string(line) +
                     ") may leave '" + fn.name +
                     "' without a wait() on some path");
      }
      for (const std::string& c : st.posted_containers) {
        if (st.satisfied_containers.count(c) == 0) {
          ctx.emit("handle-leak", close_line,
                   "handle container '" + c + "' is posted into in '" +
                       fn.name +
                       "' but never waited (no element wait(), range-for, "
                       "or hand-off)");
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// telemetry-discipline.

struct TelemetryCheck {
  Ctx& ctx;

  void run() {
    const std::string_view p = ctx.scope;
    const bool thread_scope = starts(p, "src/") && !starts(p, "src/exec/") &&
                              !starts(p, "src/dist/");
    const bool rng_scope =
        (starts(p, "src/") && !starts(p, "src/common/")) ||
        starts(p, "tests/") || starts(p, "tools/");
    const bool ring_scope = starts(p, "src/") && !starts(p, "src/obs/");
    if (!thread_scope && !rng_scope && !ring_scope) {
      return;
    }
    const std::size_t n = ctx.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Token& t = ctx.tok(i);
      if (t.kind != Token::Kind::kIdent) {
        continue;
      }
      const bool std_qualified =
          i >= 2 && ctx.tok(i - 1).text == "::" && ctx.tok(i - 2).text == "std";
      if (thread_scope && std_qualified &&
          (t.text == "thread" || t.text == "jthread")) {
        ctx.emit("telemetry-discipline", t.line,
                 "naked std::" + t.text +
                     " outside src/exec + src/dist: thread lifecycles "
                     "belong to exec::Pool / dist::ThreadGroup so "
                     "rendezvous poisoning and quiescence can reach them");
      }
      if (rng_scope) {
        if (std_qualified &&
            in_any(t.text, {"mt19937", "mt19937_64", "minstd_rand",
                            "minstd_rand0", "random_device",
                            "default_random_engine"})) {
          ctx.emit("telemetry-discipline", t.line,
                   "ambient randomness (std::" + t.text +
                       ") outside src/common: all randomness must flow "
                       "through the counter-based rcf::Rng so runs replay "
                       "from a seed");
        }
        if ((t.text == "rand" || t.text == "srand") && i + 1 < n &&
            ctx.tok(i + 1).text == "(") {
          const bool member_access =
              i >= 1 && (ctx.tok(i - 1).text == "." ||
                         ctx.tok(i - 1).text == "->" ||
                         (ctx.tok(i - 1).text == "::" && !std_qualified));
          if (!member_access) {
            ctx.emit("telemetry-discipline", t.line,
                     "ambient randomness (" + t.text +
                         "()) outside src/common: use the counter-based "
                         "rcf::Rng (src/common/rng.hpp)");
          }
        }
        if (t.text == "time" && i + 3 < n && ctx.tok(i + 1).text == "(" &&
            in_any(ctx.tok(i + 2).text, {"nullptr", "NULL", "0"}) &&
            ctx.tok(i + 3).text == ")") {
          ctx.emit("telemetry-discipline", t.line,
                   "wall-clock seeding (time(" + ctx.tok(i + 2).text +
                       ")) breaks seeded replay; derive seeds from the "
                       "run configuration");
        }
      }
      if (ring_scope && (t.text == "TelemetryRing" ||
                         t.text == "telemetry_publish_slow")) {
        ctx.emit("telemetry-discipline", t.line,
                 "'" + t.text +
                     "' used outside src/obs: the SPSC rings are owned by "
                     "the obs layer; publish through "
                     "obs::telemetry_publish() only (single-producer "
                     "discipline)");
      }
    }
  }
};

}  // namespace

const std::vector<CheckInfo>& check_registry() {
  static const std::vector<CheckInfo> kChecks = {
      {"collective-divergence",
       "collective call sites reachable under rank-divergent control flow"},
      {"nondeterministic-reduction",
       "float / unordered-iteration / shared-accumulator hazards in "
       "reduction kernels and exec parallel bodies"},
      {"handle-leak",
       "posted CommHandles that are not waited on every path"},
      {"telemetry-discipline",
       "TelemetryRing ownership, naked std::thread, and ambient-RNG "
       "layering violations"},
  };
  return kChecks;
}

void run_checks(const SourceFile& src, const std::vector<Function>& fns,
                const std::set<std::string>& only, std::string_view scope_as,
                std::vector<Finding>& out) {
  Ctx ctx{src, scope_as.empty() ? std::string_view(src.path) : scope_as, out};
  const auto enabled = [&](const char* name) {
    return only.empty() || only.count(name) != 0;
  };
  const std::string_view p = ctx.scope;
  const bool solver_side = (starts(p, "src/") && !starts(p, "src/dist/")) ||
                           starts(p, "tools/") || starts(p, "bench/") ||
                           starts(p, "examples/");
  if (enabled("collective-divergence") && solver_side) {
    DivergenceCheck div{ctx, {}};
    div.run(fns);
  }
  if (enabled("nondeterministic-reduction") && starts(p, "src/")) {
    ReductionCheck red{ctx, {}};
    red.run();
  }
  if (enabled("handle-leak") &&
      (starts(p, "src/") || starts(p, "tools/") || starts(p, "bench/") ||
       starts(p, "examples/"))) {
    HandleCheck{ctx}.run(fns);
  }
  if (enabled("telemetry-discipline")) {
    TelemetryCheck{ctx}.run();
  }
}

std::vector<Finding> analyze_text(std::string path, std::string_view text,
                                  std::string_view scope_as) {
  const SourceFile src = lex_source(std::move(path), text);
  const std::vector<Function> fns = parse_functions(src);
  std::vector<Finding> out;
  run_checks(src, fns, {}, scope_as, out);
  return out;
}

}  // namespace rcf::analyze
