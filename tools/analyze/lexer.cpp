// Lexer for rcf-analyze: turns a C++ source into the token stream the
// structural parser and checks consume.  Comments and preprocessor lines
// are stripped (waiver comments are harvested first), string/char literals
// survive as single tokens so identifier scans can never match inside
// them, and the multi-character operators the checks pattern-match on
// (::, ->, +=, ...) are fused into one token each.
#include <array>
#include <cctype>
#include <cstddef>
#include <string_view>
#include <utility>
#include <vector>

#include "analyze.hpp"

namespace rcf::analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Records `// rcf-analyze: allow(check)` (and legacy rcf-lint spelling)
/// waivers found in comment text.
void harvest_allows(std::string_view comment, int line, SourceFile& out) {
  for (const std::string_view marker :
       {std::string_view("rcf-analyze: allow("),
        std::string_view("rcf-lint: allow(")}) {
    std::size_t pos = 0;
    while ((pos = comment.find(marker, pos)) != std::string_view::npos) {
      pos += marker.size();
      const std::size_t close = comment.find(')', pos);
      if (close == std::string_view::npos) {
        break;
      }
      out.allows[line].insert(std::string(comment.substr(pos, close - pos)));
      pos = close + 1;
    }
  }
}

/// Multi-character operators fused into single tokens, longest first.
constexpr std::array<std::string_view, 21> kFusedOps = {
    "<<=", ">>=", "->*", "...", "::", "->", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "==", "!=", "<=", ">=", "&&", "||", "++"};

}  // namespace

SourceFile lex_source(std::string path, std::string_view text) {
  SourceFile out;
  out.path = std::move(path);

  // Split raw lines for excerpts.
  std::size_t line_start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      out.lines.emplace_back(text.substr(line_start, i - line_start));
      line_start = i + 1;
    }
  }

  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  const auto bump_lines = [&](std::string_view span) {
    for (const char c : span) {
      line += c == '\n' ? 1 : 0;
    }
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::size_t end = text.find('\n', i);
      if (end == std::string_view::npos) {
        end = n;
      }
      harvest_allows(text.substr(i, end - i), line, out);
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      std::size_t end = text.find("*/", i + 2);
      if (end == std::string_view::npos) {
        end = n;
      } else {
        end += 2;
      }
      harvest_allows(text.substr(i, end - i), line, out);
      bump_lines(text.substr(i, end - i));
      i = end;
      continue;
    }
    // Preprocessor directive: skip to end of line, honoring continuations.
    // Only when '#' begins a line (tokens so far on this line == none with
    // this line number) -- in practice '#' appears nowhere else in C++.
    if (c == '#') {
      std::size_t j = i;
      while (j < n) {
        if (text[j] == '\n') {
          // Backslash continuation?
          std::size_t back = j;
          while (back > i && (text[back - 1] == '\r')) {
            --back;
          }
          if (back > i && text[back - 1] == '\\') {
            ++line;
            ++j;
            continue;
          }
          break;
        }
        ++j;
      }
      i = j;
      continue;
    }
    // Raw strings: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      std::size_t open = text.find('(', i + 2);
      if (open != std::string_view::npos && open - (i + 2) <= 16) {
        const std::string_view delim = text.substr(i + 2, open - (i + 2));
        std::string closer = ")";
        closer += delim;
        closer += '"';
        std::size_t end = text.find(closer, open + 1);
        end = end == std::string_view::npos ? n : end + closer.size();
        out.toks.push_back({Token::Kind::kString,
                            std::string(text.substr(i, end - i)), line});
        bump_lines(text.substr(i, end - i));
        i = end;
        continue;
      }
    }
    // String / char literals (prefixes like u8, L handled by the ident
    // branch falling through only when followed by a quote is absent --
    // a prefixed literal lexes as ident + literal, which is harmless).
    if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      while (j < n && text[j] != c) {
        j += text[j] == '\\' ? std::size_t{2} : std::size_t{1};
      }
      j = j < n ? j + 1 : n;
      out.toks.push_back(
          {c == '"' ? Token::Kind::kString : Token::Kind::kChar,
           std::string(text.substr(i, j - i)), line});
      bump_lines(text.substr(i, j - i));
      i = j;
      continue;
    }
    // Identifiers / keywords.
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(text[j])) {
        ++j;
      }
      out.toks.push_back(
          {Token::Kind::kIdent, std::string(text.substr(i, j - i)), line});
      i = j;
      continue;
    }
    // Numbers (pp-number: digits, letters, dots, exponent signs).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])) != 0)) {
      std::size_t j = i + 1;
      while (j < n) {
        const char d = text[j];
        if (ident_char(d) || d == '.') {
          ++j;
        } else if ((d == '+' || d == '-') &&
                   (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                    text[j - 1] == 'p' || text[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      out.toks.push_back(
          {Token::Kind::kNumber, std::string(text.substr(i, j - i)), line});
      i = j;
      continue;
    }
    // Fused operators, longest match first.
    bool fused = false;
    for (const std::string_view op : kFusedOps) {
      if (text.substr(i, op.size()) == op) {
        out.toks.push_back({Token::Kind::kPunct, std::string(op), line});
        i += op.size();
        fused = true;
        break;
      }
    }
    if (fused) {
      continue;
    }
    // `--` is fused separately from the list so `->` wins above.
    if (c == '-' && i + 1 < n && text[i + 1] == '-') {
      out.toks.push_back({Token::Kind::kPunct, "--", line});
      i += 2;
      continue;
    }
    out.toks.push_back({Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  }

  // Bracket matching for ()[]{}.
  out.match.assign(out.toks.size(), static_cast<std::size_t>(-1));
  std::vector<std::size_t> stack;
  for (std::size_t t = 0; t < out.toks.size(); ++t) {
    const std::string& s = out.toks[t].text;
    if (s == "(" || s == "[" || s == "{") {
      stack.push_back(t);
    } else if (s == ")" || s == "]" || s == "}") {
      if (stack.empty()) {
        out.balanced = false;
        continue;
      }
      const std::string& open = out.toks[stack.back()].text;
      const bool ok = (s == ")" && open == "(") || (s == "]" && open == "[") ||
                      (s == "}" && open == "{");
      if (!ok) {
        out.balanced = false;
        stack.pop_back();
        continue;
      }
      out.match[stack.back()] = t;
      out.match[t] = stack.back();
      stack.pop_back();
    }
  }
  if (!stack.empty()) {
    out.balanced = false;
  }
  return out;
}

}  // namespace rcf::analyze
