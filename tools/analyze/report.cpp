// Reporting for rcf-analyze: the annotated suppression baseline
// (tools/analyze-baseline.json), the SARIF 2.1.0 emitter CI archives, and
// the human-readable text report.  JSON in/out rides on rcf_common's
// parse_json / json_escape so the tool shares one JSON dialect with the
// rest of the repo.
#include <algorithm>
#include <cstddef>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.hpp"
#include "common/json.hpp"

namespace rcf::analyze {

namespace {

std::string quoted(std::string_view s) {
  std::string out = "\"";
  json_escape_to(s, out);
  out += '"';
  return out;
}

}  // namespace

bool load_baseline(const std::string& path, Baseline& out, std::string& err) {
  std::ifstream in(path);
  if (!in) {
    return true;  // no baseline file: nothing suppressed
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = parse_json(buf.str());
  if (!doc || !doc->is_object()) {
    err = path + ": not a JSON object";
    return false;
  }
  const JsonValue* suppressions = doc->find("suppressions");
  if (suppressions == nullptr || !suppressions->is_array()) {
    err = path + ": missing \"suppressions\" array";
    return false;
  }
  for (const JsonValue& e : suppressions->array) {
    if (!e.is_object()) {
      err = path + ": suppression entries must be objects";
      return false;
    }
    Baseline::Entry entry;
    entry.check = e.string_or("check", "");
    entry.file = e.string_or("file", "");
    entry.excerpt = e.string_or("excerpt", "");
    entry.note = e.string_or("note", "");
    if (entry.check.empty() || entry.file.empty()) {
      err = path + ": every suppression needs \"check\" and \"file\"";
      return false;
    }
    if (entry.note.empty()) {
      err = path + ": suppression for " + entry.file +
            " has no \"note\" -- baseline entries must explain why the "
            "finding is acceptable";
      return false;
    }
    out.entries.push_back(std::move(entry));
  }
  return true;
}

void apply_baseline(Baseline& baseline, std::vector<Finding>& findings) {
  for (Finding& f : findings) {
    if (f.waived) {
      continue;
    }
    for (Baseline::Entry& e : baseline.entries) {
      if (e.check == f.check && e.file == f.file &&
          (e.excerpt.empty() || e.excerpt == f.excerpt)) {
        f.baselined = true;
        e.used = true;
        break;
      }
    }
  }
}

std::string render_baseline(const std::vector<Finding>& findings) {
  std::string out = "{\n  \"suppressions\": [";
  bool first = true;
  std::set<std::string> seen;  // one entry per (check, file, excerpt) key
  for (const Finding& f : findings) {
    if (!active(f)) {
      continue;
    }
    if (!seen.insert(f.check + "\x1f" + f.file + "\x1f" + f.excerpt)
             .second) {
      continue;
    }
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\n      \"check\": " + quoted(f.check) + ",\n";
    out += "      \"file\": " + quoted(f.file) + ",\n";
    out += "      \"excerpt\": " + quoted(f.excerpt) + ",\n";
    out += "      \"note\": \"NEEDS-REVIEW: justify or fix (finding at line " +
           std::to_string(f.line) + ")\"\n    }";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string render_sarif(const std::vector<Finding>& findings) {
  std::string out;
  out += "{\n";
  out += "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [{\n";
  out += "    \"tool\": {\"driver\": {\n";
  out += "      \"name\": \"rcf-analyze\",\n";
  out += "      \"informationUri\": "
         "\"https://example.invalid/rcf/tools/analyze\",\n";
  out += "      \"rules\": [";
  bool first = true;
  for (const CheckInfo& c : check_registry()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "        {\"id\": " + quoted(c.name) +
           ", \"shortDescription\": {\"text\": " + quoted(c.summary) + "}}";
  }
  out += "\n      ]\n    }},\n";
  out += "    \"results\": [";
  first = true;
  for (const Finding& f : findings) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "      {\n";
    out += "        \"ruleId\": " + quoted(f.check) + ",\n";
    out += "        \"level\": " +
           std::string(active(f) ? "\"error\"" : "\"note\"") + ",\n";
    out += "        \"message\": {\"text\": " + quoted(f.message) + "},\n";
    if (!active(f)) {
      out += "        \"suppressions\": [{\"kind\": " +
             std::string(f.waived ? "\"inSource\"" : "\"external\"") +
             "}],\n";
    }
    out += "        \"locations\": [{\"physicalLocation\": {\n";
    out += "          \"artifactLocation\": {\"uri\": " + quoted(f.file) +
           "},\n";
    out += "          \"region\": {\"startLine\": " + std::to_string(f.line);
    if (!f.excerpt.empty()) {
      out += ", \"snippet\": {\"text\": " + quoted(f.excerpt) + "}";
    }
    out += "}\n        }}]\n      }";
  }
  out += first ? "]\n" : "\n    ]\n";
  out += "  }]\n}\n";
  return out;
}

std::size_t render_text(const std::vector<Finding>& findings,
                        const Baseline& baseline, std::string& out) {
  std::size_t n_active = 0;
  std::size_t n_waived = 0;
  std::size_t n_baselined = 0;
  for (const Finding& f : findings) {
    if (f.waived) {
      ++n_waived;
      continue;
    }
    if (f.baselined) {
      ++n_baselined;
      continue;
    }
    ++n_active;
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.check + "] " +
           f.message + "\n";
    if (!f.excerpt.empty()) {
      out += "    " + f.excerpt + "\n";
    }
  }
  std::size_t stale = 0;
  for (const Baseline::Entry& e : baseline.entries) {
    if (!e.used) {
      ++stale;
      out += "note: stale baseline entry (" + e.check + " in " + e.file +
             ") no longer matches any finding -- drop it from the "
             "baseline\n";
    }
  }
  out += "rcf-analyze: " + std::to_string(n_active) + " finding" +
         (n_active == 1 ? "" : "s") + " (" + std::to_string(n_waived) +
         " waived inline, " + std::to_string(n_baselined) + " baselined";
  if (stale > 0) {
    out += ", " + std::to_string(stale) + " stale baseline entr" +
           (stale == 1 ? "y" : "ies");
  }
  out += ")\n";
  return n_active;
}

}  // namespace rcf::analyze
