#include "report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string_view>

#include "common/json.hpp"
#include "common/table.hpp"

namespace rcf::tools {

namespace {

bool read_file(const std::string& path, std::string& out, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

bool is_comm_span(std::string_view name) {
  return name == "allreduce" || name == "allreduce_wait" ||
         name == "reduce_wait" || name == "broadcast" ||
         name == "allgather" || name == "barrier_wait";
}

bool is_aux_span(std::string_view name) {
  return name == "aux_collective" || name == "aux_wait";
}

DurationStats duration_stats(std::vector<double>& durs_us) {
  DurationStats stats;
  stats.count = durs_us.size();
  if (durs_us.empty()) {
    return stats;
  }
  std::sort(durs_us.begin(), durs_us.end());
  double total = 0.0;
  for (const double v : durs_us) {
    total += v;
  }
  stats.mean_us = total / static_cast<double>(durs_us.size());
  const auto at = [&durs_us](double p) {
    const auto n = durs_us.size();
    const auto idx = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(n) - 1.0,
                         std::ceil(p * static_cast<double>(n)) - 1.0));
    return durs_us[std::max<std::size_t>(idx, 0)];
  };
  stats.p50_us = at(0.5);
  stats.p95_us = at(0.95);
  stats.p99_us = at(0.99);
  stats.max_us = durs_us.back();
  return stats;
}

void append_number(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "null";
    return;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

double nan_to_zero(double v) { return std::isnan(v) ? 0.0 : v; }

}  // namespace

bool load_chrome_trace(const std::string& path,
                       std::vector<ReportEvent>& events, std::string& error) {
  std::string text;
  if (!read_file(path, text, error)) {
    return false;
  }
  const auto doc = parse_json(text);
  if (!doc || !doc->is_object()) {
    error = path + ": not a JSON object";
    return false;
  }
  const JsonValue* trace_events = doc->find("traceEvents");
  if (trace_events == nullptr || !trace_events->is_array()) {
    error = path + ": missing traceEvents array";
    return false;
  }
  for (const JsonValue& ev : trace_events->array) {
    if (!ev.is_object()) {
      continue;
    }
    ReportEvent out;
    out.name = ev.string_or("name", "");
    out.rank = static_cast<int>(ev.number_or("pid", 0.0));
    out.ts_us = static_cast<std::int64_t>(ev.number_or("ts", 0.0));
    out.dur_us = static_cast<std::int64_t>(ev.number_or("dur", 0.0));
    if (const JsonValue* args = ev.find("args")) {
      out.words = args->number_or("words", 0.0);
      out.seq = static_cast<std::int64_t>(args->number_or("seq", -1.0));
    }
    events.push_back(std::move(out));
  }
  return true;
}

bool load_jsonl_trace(const std::string& path,
                      std::vector<ReportEvent>& events, std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    const auto doc = parse_json(line);
    if (!doc || !doc->is_object()) {
      error = path + ":" + std::to_string(line_no) + ": bad JSON line";
      return false;
    }
    ReportEvent out;
    out.name = doc->string_or("name", "");
    out.rank = static_cast<int>(doc->number_or("rank", 0.0));
    out.ts_us = static_cast<std::int64_t>(doc->number_or("ts_us", 0.0));
    out.dur_us = static_cast<std::int64_t>(doc->number_or("dur_us", 0.0));
    out.words = doc->number_or("words", 0.0);
    out.seq = static_cast<std::int64_t>(doc->number_or("seq", -1.0));
    events.push_back(std::move(out));
  }
  return true;
}

bool load_convergence(const std::string& path, std::vector<ConvRow>& rows,
                      std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::string line;
  std::size_t line_no = 0;
  const double nan = std::nan("");
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    const auto doc = parse_json(line);
    if (!doc || !doc->is_object()) {
      error = path + ":" + std::to_string(line_no) + ": bad JSON line";
      return false;
    }
    ConvRow row;
    row.iteration =
        static_cast<std::uint64_t>(doc->number_or("iteration", 0.0));
    row.objective = doc->number_or("objective", nan);
    row.grad_norm = doc->number_or("grad_norm", nan);
    row.support = doc->number_or("support", nan);
    row.step = doc->number_or("step", nan);
    rows.push_back(row);
  }
  return true;
}

bool build_report(const std::vector<ReportEvent>& events,
                  const std::string& metrics_json,
                  const std::vector<ConvRow>& convergence, Report& out,
                  std::string& error) {
  out = Report{};
  out.convergence = convergence;

  // -- per-rank breakdown + per-phase critical path -------------------------
  std::map<int, RankBreakdown> ranks;
  // phase name -> rank -> (count, us, words)
  struct PhaseAccum {
    std::uint64_t count = 0;
    double us = 0.0;
    double words = 0.0;
  };
  std::map<std::string, std::map<int, PhaseAccum>> phases;
  std::vector<double> skew_durs;
  for (const ReportEvent& ev : events) {
    RankBreakdown& rb = ranks[ev.rank];
    rb.rank = ev.rank;
    ++rb.spans;
    const double secs = static_cast<double>(ev.dur_us) * 1e-6;
    if (is_aux_span(ev.name)) {
      rb.aux_s += secs;
    } else if (is_comm_span(ev.name)) {
      rb.comm_s += secs;
    } else {
      rb.compute_s += secs;
    }
    PhaseAccum& pa = phases[ev.name][ev.rank];
    ++pa.count;
    pa.us += static_cast<double>(ev.dur_us);
    pa.words += ev.words;
    if (ev.name == "allreduce_wait") {
      skew_durs.push_back(static_cast<double>(ev.dur_us));
    }
    if (ev.name == "allreduce") {
      ++out.allreduce_spans;
    }
  }
  out.ranks.reserve(ranks.size());
  for (const auto& [rank, rb] : ranks) {
    out.ranks.push_back(rb);
  }
  for (const auto& [name, by_rank] : phases) {
    PhaseRow row;
    row.name = name;
    double critical_us = 0.0;
    double total_us = 0.0;
    for (const auto& [rank, pa] : by_rank) {
      row.count += pa.count;
      total_us += pa.us;
      row.words += pa.words;
      critical_us = std::max(critical_us, pa.us);
    }
    row.total_s = total_us * 1e-6;
    row.critical_s = critical_us * 1e-6;
    row.mean_rank_s =
        total_us * 1e-6 / static_cast<double>(by_rank.size());
    out.phases.push_back(std::move(row));
  }
  std::sort(out.phases.begin(), out.phases.end(),
            [](const PhaseRow& a, const PhaseRow& b) {
              return a.critical_s > b.critical_s ||
                     (a.critical_s == b.critical_s && a.name < b.name);
            });
  out.skew = duration_stats(skew_durs);

  // -- cross-rank merged timeline + critical path ---------------------------
  if (!events.empty()) {
    std::vector<obs::TimelineSpan> spans;
    spans.reserve(events.size());
    for (const ReportEvent& ev : events) {
      obs::TimelineSpan s;
      s.name = ev.name;
      s.rank = ev.rank;
      s.seq = ev.seq;
      s.start_us = ev.ts_us;
      s.dur_us = ev.dur_us;
      s.words = ev.words;
      spans.push_back(std::move(s));
    }
    const obs::Timeline timeline = obs::Timeline::build(spans);
    out.decomposition = timeline.rank_times();
    out.critpath = obs::critical_path(timeline);
  }

  // -- metrics file: histograms, agg.* gauges, model.* gauges ---------------
  if (!metrics_json.empty()) {
    const auto doc = parse_json(metrics_json);
    if (!doc || !doc->is_object()) {
      error = "metrics file is not a JSON object";
      return false;
    }
    if (const JsonValue* hists = doc->find("histograms");
        hists != nullptr && hists->is_object()) {
      for (const auto& [name, h] : hists->members) {
        HistRow row;
        row.name = name;
        row.count = static_cast<std::uint64_t>(h.number_or("count", 0.0));
        row.sum = h.number_or("sum", 0.0);
        row.max = h.number_or("max", 0.0);
        row.p50 = h.number_or("p50", 0.0);
        row.p95 = h.number_or("p95", 0.0);
        row.p99 = h.number_or("p99", 0.0);
        out.histograms.push_back(std::move(row));
      }
    }
    if (const JsonValue* counters = doc->find("counters");
        counters != nullptr && counters->is_object()) {
      // Resilience view: the retry/backoff/fault-injection counters the
      // fault layer maintains (see src/fault and dist/retry.hpp).  Zero
      // rows are dropped so clean runs keep a clean report.
      for (const auto& [name, value] : counters->members) {
        const auto ends_with = [&name](std::string_view suffix) {
          return name.size() >= suffix.size() &&
                 name.compare(name.size() - suffix.size(), suffix.size(),
                              suffix) == 0;
        };
        const bool resilience_counter =
            name == "comm.backoff_us" || name.rfind("fault.", 0) == 0 ||
            (name.rfind("comm.", 0) == 0 &&
             (ends_with(".retries") || ends_with(".faults_injected")));
        if (resilience_counter && value.is_number() && value.number != 0.0) {
          out.resilience.push_back(ResilienceRow{name, value.number});
        }
      }
      // Roofline view: perf.<label>.{cycles,instructions,llc_misses,
      // samples} counter groups from obs::PerfScope.  perf.unavailable.*
      // markers (structured no-op fallback) are skipped.
      std::map<std::string, RooflineRow> perf_rows;
      for (const auto& [name, value] : counters->members) {
        if (name.rfind("perf.", 0) != 0 || !value.is_number()) {
          continue;
        }
        const std::string rest = name.substr(5);
        const auto last_dot = rest.rfind('.');
        if (last_dot == std::string::npos ||
            rest.rfind("unavailable.", 0) == 0) {
          continue;
        }
        const std::string label = rest.substr(0, last_dot);
        const std::string field = rest.substr(last_dot + 1);
        RooflineRow& row = perf_rows[label];
        row.label = label;
        if (field == "cycles") row.cycles = value.number;
        else if (field == "instructions") row.instructions = value.number;
        else if (field == "llc_misses") row.llc_misses = value.number;
        else if (field == "samples") row.samples = value.number;
      }
      for (auto& [label, row] : perf_rows) {
        if (row.samples > 0.0) {
          out.roofline.push_back(std::move(row));
        }
      }
    }
    if (const JsonValue* gauges = doc->find("gauges");
        gauges != nullptr && gauges->is_object()) {
      // agg.* gauges pass through verbatim; model.<label>.<quantity>.<kind>
      // gauges are regrouped into predicted-vs-measured rows.
      std::map<std::string, ModelRow> model_rows;
      for (const auto& [name, value] : gauges->members) {
        if (!value.is_number()) {
          continue;
        }
        if (name.rfind("agg.", 0) == 0) {
          out.aggregated.push_back(AggRow{name, value.number});
          continue;
        }
        if (name.rfind("model.", 0) != 0) {
          continue;
        }
        const std::string rest = name.substr(6);
        const auto first_dot = rest.find('.');
        if (first_dot == std::string::npos) {
          continue;  // model.latency_err etc. (summary gauges)
        }
        const std::string label = rest.substr(0, first_dot);
        if (label == "residual") {
          continue;  // model.residual.* summary gauges, not a config row
        }
        const std::string field = rest.substr(first_dot + 1);
        ModelRow& row = model_rows[label];
        row.label = label;
        const double v = value.number;
        if (field == "latency.pred") row.latency_pred = v;
        else if (field == "latency.meas") row.latency_meas = v;
        else if (field == "latency_err") row.latency_err = v;
        else if (field == "bw.pred") row.bw_pred = v;
        else if (field == "bw.meas") row.bw_meas = v;
        else if (field == "bw_err") row.bw_err = v;
        else if (field == "flops.pred") row.flops_pred = v;
        else if (field == "flops.meas") row.flops_meas = v;
        else if (field == "flops_err") row.flops_err = v;
        else if (field == "rounds.pred") row.rounds_pred = v;
        else if (field == "rounds.meas") row.rounds_meas = v;
        else if (field == "seconds.pred") row.seconds_pred = v;
        else if (field == "seconds.meas") row.seconds_meas = v;
        else if (field == "comm_seconds.pred") row.comm_pred = v;
        else if (field == "comm_seconds.meas") row.comm_meas = v;
        else if (field == "comm_err") row.comm_err = v;
        else if (field == "seconds_err") row.seconds_err = v;
      }
      for (auto& [label, row] : model_rows) {
        out.model.push_back(std::move(row));
      }
    }
  }
  return true;
}

namespace {

AsciiTable rank_table(const Report& r) {
  AsciiTable tbl({"rank", "comm (s)", "compute (s)", "aux (s)", "comm %",
                  "spans"});
  for (const auto& rb : r.ranks) {
    const double total = rb.total_s();
    tbl.add_row({std::to_string(rb.rank), fmt_f(rb.comm_s, 6),
                 fmt_f(rb.compute_s, 6), fmt_f(rb.aux_s, 6),
                 fmt_f(total > 0.0 ? 100.0 * rb.comm_s / total : 0.0, 1),
                 fmt_count(rb.spans)});
  }
  return tbl;
}

AsciiTable phase_table(const Report& r) {
  AsciiTable tbl({"phase", "count", "critical (s)", "mean/rank (s)",
                  "total (s)", "payload words"});
  for (const auto& p : r.phases) {
    tbl.add_row({p.name, fmt_count(p.count), fmt_f(p.critical_s, 6),
                 fmt_f(p.mean_rank_s, 6), fmt_f(p.total_s, 6),
                 fmt_g(p.words, 4)});
  }
  return tbl;
}

AsciiTable hist_table(const Report& r) {
  AsciiTable tbl({"histogram", "count", "p50", "p95", "p99", "max", "sum"});
  for (const auto& h : r.histograms) {
    tbl.add_row({h.name, fmt_count(h.count), fmt_g(h.p50), fmt_g(h.p95),
                 fmt_g(h.p99), fmt_g(h.max), fmt_g(h.sum)});
  }
  return tbl;
}

AsciiTable model_table(const Report& r) {
  AsciiTable tbl({"config", "rounds p/m", "L pred", "L meas", "L err",
                  "W pred", "W meas", "W err", "F pred", "F meas", "F err",
                  "Tc pred(s)", "Tc meas(s)", "Tc err"});
  for (const auto& m : r.model) {
    tbl.add_row({m.label,
                 fmt_g(m.rounds_pred, 3) + "/" + fmt_g(m.rounds_meas, 3),
                 fmt_g(m.latency_pred, 3), fmt_g(m.latency_meas, 3),
                 fmt_f(m.latency_err, 3), fmt_g(m.bw_pred, 3),
                 fmt_g(m.bw_meas, 3), fmt_f(m.bw_err, 3),
                 fmt_g(m.flops_pred, 3), fmt_g(m.flops_meas, 3),
                 fmt_f(m.flops_err, 3), fmt_e(m.comm_pred, 2),
                 fmt_e(m.comm_meas, 2), fmt_f(m.comm_err, 3)});
  }
  return tbl;
}

AsciiTable decomposition_table(const Report& r) {
  AsciiTable tbl({"rank", "compute (s)", "comm (s)", "wait (s)", "aux (s)",
                  "wait %"});
  for (const auto& rt : r.decomposition) {
    const double total = rt.total_s();
    tbl.add_row({std::to_string(rt.rank), fmt_f(rt.compute_s, 6),
                 fmt_f(rt.comm_s, 6), fmt_f(rt.wait_s, 6), fmt_f(rt.aux_s, 6),
                 fmt_f(total > 0.0 ? 100.0 * rt.wait_s / total : 0.0, 1)});
  }
  return tbl;
}

AsciiTable straggler_report_table(const Report& r) {
  AsciiTable tbl({"collective", "seq", "straggler rank", "imposed wait (s)",
                  "total wait (s)"});
  for (const auto& s : r.critpath.top_stragglers) {
    tbl.add_row({s.name, std::to_string(s.seq), std::to_string(s.rank),
                 fmt_f(s.wait_imposed_s, 6), fmt_f(s.wait_total_s, 6)});
  }
  return tbl;
}

AsciiTable roofline_table(const Report& r) {
  AsciiTable tbl({"kernel", "samples", "cycles", "instructions", "ipc",
                  "llc misses"});
  for (const auto& row : r.roofline) {
    tbl.add_row({row.label, fmt_g(row.samples, 4), fmt_g(row.cycles, 4),
                 fmt_g(row.instructions, 4), fmt_f(row.ipc(), 2),
                 fmt_g(row.llc_misses, 4)});
  }
  return tbl;
}

std::string critpath_summary(const Report& r) {
  const auto& cp = r.critpath;
  std::ostringstream out;
  out << "critical path: compute=" << fmt_f(cp.compute_s, 6)
      << "s comm=" << fmt_f(cp.comm_s, 6)
      << "s imposed wait=" << fmt_f(cp.wait_s, 6)
      << "s makespan=" << fmt_f(cp.makespan_s, 6)
      << "s coverage=" << fmt_f(100.0 * cp.coverage, 1) << "%\n";
  return out.str();
}

AsciiTable agg_table(const Report& r) {
  AsciiTable tbl({"aggregated metric", "value"});
  for (const auto& a : r.aggregated) {
    tbl.add_row({a.name, fmt_g(a.value, 6)});
  }
  return tbl;
}

AsciiTable resilience_table(const Report& r) {
  AsciiTable tbl({"resilience counter", "value"});
  for (const auto& row : r.resilience) {
    tbl.add_row({row.name, fmt_g(row.value, 6)});
  }
  return tbl;
}

AsciiTable conv_table(const Report& r) {
  AsciiTable tbl({"iter", "objective", "grad norm", "support", "step"});
  // Bound the text rendering; the JSON format carries every row.
  const std::size_t n = r.convergence.size();
  const std::size_t head = n > 24 ? 12 : n;
  for (std::size_t i = 0; i < head; ++i) {
    const auto& c = r.convergence[i];
    tbl.add_row({std::to_string(c.iteration), fmt_g(c.objective, 6),
                 fmt_g(c.grad_norm, 4), fmt_g(nan_to_zero(c.support), 4),
                 fmt_g(c.step, 4)});
  }
  if (n > 24) {
    tbl.add_row({"...", "", "", "", ""});
    for (std::size_t i = n - 12; i < n; ++i) {
      const auto& c = r.convergence[i];
      tbl.add_row({std::to_string(c.iteration), fmt_g(c.objective, 6),
                   fmt_g(c.grad_norm, 4), fmt_g(nan_to_zero(c.support), 4),
                   fmt_g(c.step, 4)});
    }
  }
  return tbl;
}

std::string skew_line(const Report& r) {
  std::ostringstream out;
  out << "rendezvous skew (allreduce_wait, us): count="
      << r.skew.count << " mean=" << fmt_f(r.skew.mean_us, 1)
      << " p50=" << fmt_f(r.skew.p50_us, 1)
      << " p95=" << fmt_f(r.skew.p95_us, 1)
      << " p99=" << fmt_f(r.skew.p99_us, 1)
      << " max=" << fmt_f(r.skew.max_us, 1) << "\n";
  return out.str();
}

// Markdown pipe-table from the same cells AsciiTable carries; AsciiTable
// has no cell access, so rebuild rows here via a tiny emitter.
class MarkdownTable {
 public:
  explicit MarkdownTable(std::vector<std::string> header)
      : header_(std::move(header)) {}
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }
  [[nodiscard]] std::string str() const {
    std::ostringstream out;
    out << "|";
    for (const auto& h : header_) {
      out << " " << h << " |";
    }
    out << "\n|";
    for (std::size_t i = 0; i < header_.size(); ++i) {
      out << " --- |";
    }
    out << "\n";
    for (const auto& row : rows_) {
      out << "|";
      for (const auto& cell : row) {
        out << " " << cell << " |";
      }
      out << "\n";
    }
    return out.str();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace

std::string render_text(const Report& r) {
  std::ostringstream out;
  out << "== rcf-report ==\n\n";
  if (!r.ranks.empty()) {
    out << "per-rank comm vs compute\n" << rank_table(r).str() << "\n";
  }
  if (!r.phases.empty()) {
    out << "per-phase critical path (allreduce spans: "
        << r.allreduce_spans << ")\n"
        << phase_table(r).str() << "\n";
  }
  if (!r.decomposition.empty()) {
    out << "cross-rank timeline: compute / comm / wait decomposition\n"
        << decomposition_table(r).str() << "\n";
  }
  if (!r.critpath.segments.empty()) {
    out << critpath_summary(r)
        << obs::critpath_table(r.critpath) << "\n";
    if (!r.critpath.top_stragglers.empty()) {
      out << "top straggler collectives\n"
          << straggler_report_table(r).str() << "\n";
    }
  }
  if (r.skew.count > 0) {
    out << skew_line(r) << "\n";
  }
  if (!r.histograms.empty()) {
    out << "latency histograms\n" << hist_table(r).str() << "\n";
  }
  if (!r.model.empty()) {
    out << "cost model: predicted vs measured "
           "(Tc = alpha_eff*L + beta*W vs traced allreduce-phase wall)\n"
        << model_table(r).str() << "\n";
  }
  if (!r.roofline.empty()) {
    out << "hardware counters (perf.* kernel samples)\n"
        << roofline_table(r).str() << "\n";
  }
  if (!r.aggregated.empty()) {
    out << "cross-rank aggregated metrics\n" << agg_table(r).str() << "\n";
  }
  if (!r.resilience.empty()) {
    out << "resilience (retries / injected faults / backoff)\n"
        << resilience_table(r).str() << "\n";
  }
  if (!r.convergence.empty()) {
    out << "convergence trace (" << r.convergence.size() << " records)\n"
        << conv_table(r).str() << "\n";
  }
  return out.str();
}

std::string render_markdown(const Report& r) {
  std::ostringstream out;
  out << "# rcf-report\n\n";
  if (!r.ranks.empty()) {
    MarkdownTable tbl({"rank", "comm (s)", "compute (s)", "aux (s)",
                       "comm %", "spans"});
    for (const auto& rb : r.ranks) {
      const double total = rb.total_s();
      tbl.add_row({std::to_string(rb.rank), fmt_f(rb.comm_s, 6),
                   fmt_f(rb.compute_s, 6), fmt_f(rb.aux_s, 6),
                   fmt_f(total > 0.0 ? 100.0 * rb.comm_s / total : 0.0, 1),
                   fmt_count(rb.spans)});
    }
    out << "## Per-rank comm vs compute\n\n" << tbl.str() << "\n";
  }
  if (!r.phases.empty()) {
    MarkdownTable tbl({"phase", "count", "critical (s)", "mean/rank (s)",
                       "total (s)", "payload words"});
    for (const auto& p : r.phases) {
      tbl.add_row({p.name, fmt_count(p.count), fmt_f(p.critical_s, 6),
                   fmt_f(p.mean_rank_s, 6), fmt_f(p.total_s, 6),
                   fmt_g(p.words, 4)});
    }
    out << "## Per-phase critical path\n\n" << tbl.str() << "\n";
  }
  if (!r.decomposition.empty()) {
    MarkdownTable tbl({"rank", "compute (s)", "comm (s)", "wait (s)",
                       "aux (s)"});
    for (const auto& rt : r.decomposition) {
      tbl.add_row({std::to_string(rt.rank), fmt_f(rt.compute_s, 6),
                   fmt_f(rt.comm_s, 6), fmt_f(rt.wait_s, 6),
                   fmt_f(rt.aux_s, 6)});
    }
    out << "## Cross-rank timeline decomposition\n\n" << tbl.str() << "\n";
  }
  if (!r.critpath.segments.empty()) {
    out << "## Critical path\n\n" << critpath_summary(r) << "\n";
    MarkdownTable tbl({"segment", "seq", "rank", "compute (s)",
                       "collective (s)", "imposed wait (s)", "words"});
    for (const auto& s : r.critpath.segments) {
      tbl.add_row({s.name, std::to_string(s.seq),
                   std::to_string(s.critical_rank), fmt_f(s.compute_s, 6),
                   fmt_f(s.collective_s, 6), fmt_f(s.wait_imposed_s, 6),
                   fmt_g(s.words, 4)});
    }
    out << tbl.str() << "\n";
    if (!r.critpath.top_stragglers.empty()) {
      MarkdownTable stbl({"collective", "seq", "straggler rank",
                          "imposed wait (s)", "total wait (s)"});
      for (const auto& s : r.critpath.top_stragglers) {
        stbl.add_row({s.name, std::to_string(s.seq), std::to_string(s.rank),
                      fmt_f(s.wait_imposed_s, 6), fmt_f(s.wait_total_s, 6)});
      }
      out << "### Top straggler collectives\n\n" << stbl.str() << "\n";
    }
  }
  if (r.skew.count > 0) {
    out << "## Rendezvous skew\n\n" << skew_line(r) << "\n";
  }
  if (!r.histograms.empty()) {
    MarkdownTable tbl({"histogram", "count", "p50", "p95", "p99", "max"});
    for (const auto& h : r.histograms) {
      tbl.add_row({h.name, fmt_count(h.count), fmt_g(h.p50), fmt_g(h.p95),
                   fmt_g(h.p99), fmt_g(h.max)});
    }
    out << "## Latency histograms\n\n" << tbl.str() << "\n";
  }
  if (!r.model.empty()) {
    MarkdownTable tbl({"config", "rounds p/m", "L pred", "L meas", "L err",
                       "W pred", "W meas", "W err", "F pred", "F meas",
                       "F err", "Tc pred (s)", "Tc meas (s)", "Tc err"});
    for (const auto& m : r.model) {
      tbl.add_row({m.label,
                   fmt_g(m.rounds_pred, 3) + "/" + fmt_g(m.rounds_meas, 3),
                   fmt_g(m.latency_pred, 3), fmt_g(m.latency_meas, 3),
                   fmt_f(m.latency_err, 3), fmt_g(m.bw_pred, 3),
                   fmt_g(m.bw_meas, 3), fmt_f(m.bw_err, 3),
                   fmt_g(m.flops_pred, 3), fmt_g(m.flops_meas, 3),
                   fmt_f(m.flops_err, 3), fmt_e(m.comm_pred, 2),
                   fmt_e(m.comm_meas, 2), fmt_f(m.comm_err, 3)});
    }
    out << "## Cost model: predicted vs measured\n\n" << tbl.str() << "\n";
  }
  if (!r.roofline.empty()) {
    MarkdownTable tbl({"kernel", "samples", "cycles", "instructions", "ipc",
                       "llc misses"});
    for (const auto& row : r.roofline) {
      tbl.add_row({row.label, fmt_g(row.samples, 4), fmt_g(row.cycles, 4),
                   fmt_g(row.instructions, 4), fmt_f(row.ipc(), 2),
                   fmt_g(row.llc_misses, 4)});
    }
    out << "## Hardware counters\n\n" << tbl.str() << "\n";
  }
  if (!r.aggregated.empty()) {
    MarkdownTable tbl({"aggregated metric", "value"});
    for (const auto& a : r.aggregated) {
      tbl.add_row({a.name, fmt_g(a.value, 6)});
    }
    out << "## Cross-rank aggregated metrics\n\n" << tbl.str() << "\n";
  }
  if (!r.resilience.empty()) {
    MarkdownTable tbl({"resilience counter", "value"});
    for (const auto& row : r.resilience) {
      tbl.add_row({row.name, fmt_g(row.value, 6)});
    }
    out << "## Resilience\n\n" << tbl.str() << "\n";
  }
  if (!r.convergence.empty()) {
    MarkdownTable tbl({"iter", "objective", "grad norm", "support", "step"});
    for (const auto& c : r.convergence) {
      tbl.add_row({std::to_string(c.iteration), fmt_g(c.objective, 6),
                   fmt_g(c.grad_norm, 4), fmt_g(nan_to_zero(c.support), 4),
                   fmt_g(c.step, 4)});
    }
    out << "## Convergence trace\n\n" << tbl.str() << "\n";
  }
  return out.str();
}

std::string render_json(const Report& r) {
  std::string out;
  out += "{\"ranks\":[";
  for (std::size_t i = 0; i < r.ranks.size(); ++i) {
    const auto& rb = r.ranks[i];
    if (i > 0) out += ",";
    out += "{\"rank\":" + std::to_string(rb.rank);
    out += ",\"comm_s\":";
    append_number(out, rb.comm_s);
    out += ",\"compute_s\":";
    append_number(out, rb.compute_s);
    out += ",\"aux_s\":";
    append_number(out, rb.aux_s);
    out += ",\"spans\":" + std::to_string(rb.spans) + "}";
  }
  out += "],\"phases\":[";
  for (std::size_t i = 0; i < r.phases.size(); ++i) {
    const auto& p = r.phases[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"";
    json_escape_to(p.name, out);
    out += "\",\"count\":" + std::to_string(p.count);
    out += ",\"critical_s\":";
    append_number(out, p.critical_s);
    out += ",\"mean_rank_s\":";
    append_number(out, p.mean_rank_s);
    out += ",\"total_s\":";
    append_number(out, p.total_s);
    out += ",\"words\":";
    append_number(out, p.words);
    out += "}";
  }
  out += "],\"allreduce_spans\":" + std::to_string(r.allreduce_spans);
  out += ",\"skew\":{\"count\":" + std::to_string(r.skew.count);
  out += ",\"mean_us\":";
  append_number(out, r.skew.mean_us);
  out += ",\"p50_us\":";
  append_number(out, r.skew.p50_us);
  out += ",\"p95_us\":";
  append_number(out, r.skew.p95_us);
  out += ",\"p99_us\":";
  append_number(out, r.skew.p99_us);
  out += ",\"max_us\":";
  append_number(out, r.skew.max_us);
  out += "},\"histograms\":[";
  for (std::size_t i = 0; i < r.histograms.size(); ++i) {
    const auto& h = r.histograms[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"";
    json_escape_to(h.name, out);
    out += "\",\"count\":" + std::to_string(h.count);
    out += ",\"sum\":";
    append_number(out, h.sum);
    out += ",\"max\":";
    append_number(out, h.max);
    out += ",\"p50\":";
    append_number(out, h.p50);
    out += ",\"p95\":";
    append_number(out, h.p95);
    out += ",\"p99\":";
    append_number(out, h.p99);
    out += "}";
  }
  out += "],\"model\":[";
  for (std::size_t i = 0; i < r.model.size(); ++i) {
    const auto& m = r.model[i];
    if (i > 0) out += ",";
    out += "{\"label\":\"";
    json_escape_to(m.label, out);
    out += "\"";
    const auto field = [&out](const char* key, double v) {
      out += ",\"";
      out += key;
      out += "\":";
      append_number(out, v);
    };
    field("latency_pred", m.latency_pred);
    field("latency_meas", m.latency_meas);
    field("latency_err", m.latency_err);
    field("bw_pred", m.bw_pred);
    field("bw_meas", m.bw_meas);
    field("bw_err", m.bw_err);
    field("flops_pred", m.flops_pred);
    field("flops_meas", m.flops_meas);
    field("flops_err", m.flops_err);
    field("rounds_pred", m.rounds_pred);
    field("rounds_meas", m.rounds_meas);
    field("seconds_pred", m.seconds_pred);
    field("seconds_meas", m.seconds_meas);
    field("comm_pred", m.comm_pred);
    field("comm_meas", m.comm_meas);
    field("comm_err", m.comm_err);
    field("seconds_err", m.seconds_err);
    out += "}";
  }
  out += "],\"decomposition\":[";
  for (std::size_t i = 0; i < r.decomposition.size(); ++i) {
    const auto& rt = r.decomposition[i];
    if (i > 0) out += ",";
    out += "{\"rank\":" + std::to_string(rt.rank);
    out += ",\"compute_s\":";
    append_number(out, rt.compute_s);
    out += ",\"comm_s\":";
    append_number(out, rt.comm_s);
    out += ",\"wait_s\":";
    append_number(out, rt.wait_s);
    out += ",\"aux_s\":";
    append_number(out, rt.aux_s);
    out += ",\"spans\":" + std::to_string(rt.spans) + "}";
  }
  out += "],\"critical_path\":{\"compute_s\":";
  append_number(out, r.critpath.compute_s);
  out += ",\"comm_s\":";
  append_number(out, r.critpath.comm_s);
  out += ",\"wait_s\":";
  append_number(out, r.critpath.wait_s);
  out += ",\"makespan_s\":";
  append_number(out, r.critpath.makespan_s);
  out += ",\"coverage\":";
  append_number(out, r.critpath.coverage);
  out += ",\"segments\":[";
  for (std::size_t i = 0; i < r.critpath.segments.size(); ++i) {
    const auto& s = r.critpath.segments[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"";
    json_escape_to(s.name, out);
    out += "\",\"seq\":" + std::to_string(s.seq);
    out += ",\"rank\":" + std::to_string(s.critical_rank);
    out += ",\"compute_s\":";
    append_number(out, s.compute_s);
    out += ",\"collective_s\":";
    append_number(out, s.collective_s);
    out += ",\"wait_imposed_s\":";
    append_number(out, s.wait_imposed_s);
    out += ",\"words\":";
    append_number(out, s.words);
    out += "}";
  }
  out += "],\"top_stragglers\":[";
  for (std::size_t i = 0; i < r.critpath.top_stragglers.size(); ++i) {
    const auto& s = r.critpath.top_stragglers[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"";
    json_escape_to(s.name, out);
    out += "\",\"seq\":" + std::to_string(s.seq);
    out += ",\"rank\":" + std::to_string(s.rank);
    out += ",\"wait_imposed_s\":";
    append_number(out, s.wait_imposed_s);
    out += ",\"wait_total_s\":";
    append_number(out, s.wait_total_s);
    out += "}";
  }
  out += "]},\"roofline\":[";
  for (std::size_t i = 0; i < r.roofline.size(); ++i) {
    const auto& row = r.roofline[i];
    if (i > 0) out += ",";
    out += "{\"label\":\"";
    json_escape_to(row.label, out);
    out += "\",\"cycles\":";
    append_number(out, row.cycles);
    out += ",\"instructions\":";
    append_number(out, row.instructions);
    out += ",\"llc_misses\":";
    append_number(out, row.llc_misses);
    out += ",\"samples\":";
    append_number(out, row.samples);
    out += ",\"ipc\":";
    append_number(out, row.ipc());
    out += "}";
  }
  out += "],\"aggregated\":{";
  for (std::size_t i = 0; i < r.aggregated.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"";
    json_escape_to(r.aggregated[i].name, out);
    out += "\":";
    append_number(out, r.aggregated[i].value);
  }
  out += "},\"resilience\":{";
  for (std::size_t i = 0; i < r.resilience.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"";
    json_escape_to(r.resilience[i].name, out);
    out += "\":";
    append_number(out, r.resilience[i].value);
  }
  out += "},\"convergence\":[";
  for (std::size_t i = 0; i < r.convergence.size(); ++i) {
    const auto& c = r.convergence[i];
    if (i > 0) out += ",";
    out += "{\"iteration\":" + std::to_string(c.iteration);
    out += ",\"objective\":";
    append_number(out, c.objective);
    out += ",\"grad_norm\":";
    append_number(out, c.grad_norm);
    out += ",\"support\":";
    append_number(out, c.support);
    out += ",\"step\":";
    append_number(out, c.step);
    out += "}";
  }
  out += "]}\n";
  return out;
}

}  // namespace rcf::tools
