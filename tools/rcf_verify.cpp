// rcf-verify CLI: runs the src/check verification fixtures against the
// solver engine and exits nonzero on the first violation.  This is the
// determinism auditor's command-line face plus a checked end-to-end solve:
//
//   rcf-verify                         # all suites on a default problem
//   rcf-verify --suite=partition       # partition sweep only
//   rcf-verify --suite=width           # pool-width replay (bitwise)
//   rcf-verify --suite=ranks           # rank replay (tolerance + run-to-run)
//   rcf-verify --suite=solve           # 4-rank solve under RCF_CHECK=1
//   rcf-verify --m=2000 --d=64 --iters=48 --widths=1,2,4 --ranks=1,2,4
//
// Each suite prints PASS/FAIL; failures carry the checker's diagnostic
// (first divergent element, colliding partition parts, or the collective
// contract report).
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "check/determinism.hpp"
#include "check/options.hpp"
#include "check/partition.hpp"
#include "common/cli.hpp"
#include "core/distributed.hpp"
#include "core/problem.hpp"
#include "core/solvers.hpp"
#include "data/synthetic.hpp"
#include "dist/thread_comm.hpp"
#include "exec/pool.hpp"
#include "la/blas.hpp"
#include "obs/metrics.hpp"

namespace {

struct VerifyConfig {
  std::size_t m = 1200;
  std::size_t d = 32;
  int iters = 32;
  int k = 4;
  int s = 2;
  std::uint64_t seed = 13;
  std::vector<std::int64_t> widths = {1, 2, 4};
  std::vector<std::int64_t> ranks = {1, 2, 4};
  double rank_tol = 1e-9;
};

rcf::data::Dataset make_dataset(const VerifyConfig& cfg) {
  rcf::data::SyntheticOptions opts;
  opts.num_samples = cfg.m;
  opts.num_features = cfg.d;
  opts.density = 0.4;
  opts.condition = 30.0;
  opts.noise_stddev = 0.05;
  opts.seed = cfg.seed;
  return rcf::data::make_regression(opts);
}

rcf::core::SolverOptions solver_options(const VerifyConfig& cfg,
                                        int threads) {
  rcf::core::SolverOptions opts;
  opts.max_iters = cfg.iters;
  opts.sampling_rate = 0.2;
  opts.k = cfg.k;
  opts.s = cfg.s;
  opts.threads = threads;
  opts.track_history = false;
  return opts;
}

/// Runs one suite, catching checker exceptions into a FAIL line.
bool run_suite(const char* name, const std::function<void()>& body) {
  try {
    body();
    std::printf("PASS  %s\n", name);
    return true;
  } catch (const std::exception& e) {
    std::printf("FAIL  %s\n      %s\n", name, e.what());
    return false;
  }
}

/// Partition sweep: block and triangle ranges must tile [0, n) for every
/// (n, parts) shape the kernels can dispatch.
void verify_partitions() {
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{32},
        std::size_t{129}, std::size_t{1 << 12}}) {
    for (const int parts : {1, 2, 3, 5, 8, 16, 64}) {
      rcf::check::audit_partition(
          "verify.block", n, static_cast<std::size_t>(parts),
          [&](std::size_t part) {
            const auto r =
                rcf::exec::block_range(n, parts, static_cast<int>(part));
            return std::pair<std::size_t, std::size_t>{r.begin, r.end};
          });
      rcf::check::audit_partition(
          "verify.triangle", n, static_cast<std::size_t>(parts),
          [&](std::size_t part) {
            const auto r =
                rcf::exec::triangle_range(n, parts, static_cast<int>(part));
            return std::pair<std::size_t, std::size_t>{r.begin, r.end};
          });
    }
  }
}

void verify_widths(const rcf::core::LassoProblem& problem,
                   const VerifyConfig& cfg) {
  std::vector<rcf::check::ReplayRun> runs;
  for (const auto width : cfg.widths) {
    runs.push_back({"width=" + std::to_string(width), [&problem, &cfg,
                                                      width] {
                      const auto result = rcf::core::solve_rc_sfista(
                          problem,
                          solver_options(cfg, static_cast<int>(width)));
                      return result.w.raw();
                    }});
  }
  rcf::check::enforce_replay(runs, /*tol=*/0.0);
}

void verify_ranks(const rcf::core::LassoProblem& problem,
                  const VerifyConfig& cfg) {
  const auto rank_run = [&problem, &cfg](int ranks, const char* tag) {
    return rcf::check::ReplayRun{
        std::string(tag) + std::to_string(ranks), [&problem, &cfg, ranks] {
          rcf::dist::ThreadGroup group(ranks);
          return rcf::core::solve_rc_sfista_distributed(
                     problem, solver_options(cfg, 1), group)
              .w.raw();
        }};
  };
  // Run-to-run at a fixed rank count must be bitwise.
  const int repeat = static_cast<int>(cfg.ranks.back());
  rcf::check::enforce_replay(
      {rank_run(repeat, "repeat-ranks="), rank_run(repeat, "repeat-ranks=")},
      /*tol=*/0.0);
  // Across rank counts the stage-C summation regroups: tolerance check.
  std::vector<rcf::check::ReplayRun> runs;
  for (const auto ranks : cfg.ranks) {
    runs.push_back(rank_run(static_cast<int>(ranks), "ranks="));
  }
  rcf::check::enforce_replay(runs, cfg.rank_tol);
}

/// End-to-end positive control: a 4-rank solve under the RCF_CHECK=1
/// configuration must finish with zero contract/partition reports and the
/// same iterate as the unchecked solve.
void verify_checked_solve(const rcf::core::LassoProblem& problem,
                          const VerifyConfig& cfg) {
  auto& registry = rcf::obs::MetricsRegistry::global();
  rcf::core::SolveResult plain;
  {
    rcf::check::ScopedCheckEnable off(false);
    rcf::dist::ThreadGroup group(4);
    plain = rcf::core::solve_rc_sfista_distributed(
        problem, solver_options(cfg, 1), group);
  }
  const auto contract_before =
      registry.counter("check.contract_violations").value();
  const auto partition_before =
      registry.counter("check.partition_violations").value();
  rcf::core::SolveResult checked;
  {
    rcf::check::ScopedCheckEnable on(true);
    rcf::dist::ThreadGroup group(4);
    checked = rcf::core::solve_rc_sfista_distributed(
        problem, solver_options(cfg, 1), group);
  }
  const auto contract_after =
      registry.counter("check.contract_violations").value();
  const auto partition_after =
      registry.counter("check.partition_violations").value();
  if (contract_after != contract_before) {
    throw rcf::Error("checked solve raised " +
                     std::to_string(contract_after - contract_before) +
                     " contract violation report(s)");
  }
  if (partition_after != partition_before) {
    throw rcf::Error("checked solve raised " +
                     std::to_string(partition_after - partition_before) +
                     " partition violation report(s)");
  }
  if (registry.counter("check.collectives_checked").value() == 0) {
    throw rcf::Error("checker did not run (0 collectives checked)");
  }
  const double diff =
      rcf::la::max_abs_diff(checked.w.span(), plain.w.span());
  if (diff != 0.0) {
    throw rcf::Error("checked solve diverged from unchecked solve by " +
                     std::to_string(diff) + " (must be bitwise identical)");
  }
}

}  // namespace

int main(int argc, char** argv) {
  rcf::CliParser cli("rcf-verify",
                     "Determinism / partition / contract verification "
                     "fixtures for the solver engine");
  cli.add_flag("suite", "all | partition | width | ranks | solve", "all");
  cli.add_flag("m", "synthetic dataset rows", "1200");
  cli.add_flag("d", "synthetic dataset features", "32");
  cli.add_flag("iters", "solver iterations", "32");
  cli.add_flag("k", "RC-SFISTA overlap parameter", "4");
  cli.add_flag("s", "redundant update sweeps", "2");
  cli.add_flag("seed", "dataset + sampling seed", "13");
  cli.add_flag("widths", "pool widths for the width replay", "1,2,4");
  cli.add_flag("ranks", "rank counts for the rank replay", "1,2,4");
  cli.add_flag("rank-tol", "relative tolerance for the rank replay", "1e-9");
  if (!cli.parse(argc, argv)) {
    return 0;
  }

  VerifyConfig cfg;
  cfg.m = static_cast<std::size_t>(cli.get_int("m", 1200));
  cfg.d = static_cast<std::size_t>(cli.get_int("d", 32));
  cfg.iters = static_cast<int>(cli.get_int("iters", 32));
  cfg.k = static_cast<int>(cli.get_int("k", 4));
  cfg.s = static_cast<int>(cli.get_int("s", 2));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 13));
  cfg.widths = cli.get_int_list("widths", cfg.widths);
  cfg.ranks = cli.get_int_list("ranks", cfg.ranks);
  cfg.rank_tol = cli.get_double("rank-tol", cfg.rank_tol);
  const std::string suite = cli.get_string("suite", "all");
  // An unrecognized suite name must not silently select nothing and
  // "pass" — that is exactly the failure mode this binary exists to catch.
  static constexpr const char* kSuites[] = {"all", "partition", "width",
                                            "ranks", "solve"};
  if (std::find_if(std::begin(kSuites), std::end(kSuites),
                   [&suite](const char* s) { return suite == s; }) ==
      std::end(kSuites)) {
    std::fprintf(stderr,
                 "rcf-verify: unknown --suite '%s' "
                 "(expected all|partition|width|ranks|solve)\n",
                 suite.c_str());
    return 2;
  }

  const auto dataset = make_dataset(cfg);
  const rcf::core::LassoProblem problem(dataset, 0.01);

  bool ok = true;
  const auto want = [&suite](const char* name) {
    return suite == "all" || suite == name;
  };
  if (want("partition")) {
    ok = run_suite("partition sweep (block + triangle ranges)",
                   verify_partitions) &&
         ok;
  }
  if (want("width")) {
    ok = run_suite("width replay (bitwise across pool widths)",
                   [&] { verify_widths(problem, cfg); }) &&
         ok;
  }
  if (want("ranks")) {
    ok = run_suite("rank replay (run-to-run bitwise, cross-rank tolerance)",
                   [&] { verify_ranks(problem, cfg); }) &&
         ok;
  }
  if (want("solve")) {
    ok = run_suite("checked 4-rank solve (RCF_CHECK=1, zero reports)",
                   [&] { verify_checked_solve(problem, cfg); }) &&
         ok;
  }
  return ok ? 0 : 1;
}
