// rcf-top: terminal dashboard for the live telemetry stream emitted by
// obs::LiveMonitor (--live / RCF_LIVE=1 on the benches and examples).
//
// Tails a length-prefixed JSONL stream (`<decimal byte length>\t<json>\n`
// per record; types "header" / "snapshot" / "alert"), keeps the latest
// snapshot plus a bounded alert feed, and renders per-rank phase
// occupancy, progress epochs, in-flight collective age, and the alert
// feed.  Follow mode redraws in place at --interval-ms; --once consumes
// the stream to EOF and renders a single final frame (the CI smoke mode).
//
//   rcf-top --stream=run-artifacts/live.jsonl          # follow (Ctrl-C)
//   rcf-top --stream=live.jsonl --once                 # one-shot summary
//   rcf-top --stream=live.jsonl --once --fail-on-alert # exit 2 on alerts
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/json.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace {

using rcf::JsonValue;

struct RankRow {
  int rank = 0;
  std::uint64_t epoch = 0;
  double idle_us = 0.0;
  double objective = std::nan("");
  double step = std::nan("");
  double frac_compute = 0.0;
  double frac_comm = 0.0;
  double frac_wait = 0.0;
  double collectives = 0.0;
};

struct TopState {
  bool have_header = false;
  double period_ms = 0.0;
  bool have_snapshot = false;
  std::uint64_t sample = 0;
  double t_us = 0.0;
  std::uint64_t epoch = 0;
  double iters_per_s = 0.0;
  double comm_frac = 0.0;
  double inflight = 0.0;
  double inflight_age_us = 0.0;
  double retries = 0.0;
  double faults = 0.0;
  double drops = 0.0;
  double alerts_total = 0.0;
  std::vector<RankRow> ranks;
  std::deque<std::string> alert_feed;  ///< rendered one-liners, newest last
  std::uint64_t alerts_seen = 0;       ///< alert records consumed
};

constexpr std::size_t kAlertFeed = 8;

/// Extracts the next complete `<len>\t<json>\n` frame from `buf`.  Returns
/// false when no complete frame is buffered (partial write mid-tail).
bool extract_frame(std::string& buf, std::string& json_out) {
  std::size_t i = 0;
  while (i < buf.size() && (buf[i] == '\n' || buf[i] == '\r')) {
    ++i;
  }
  std::size_t j = i;
  while (j < buf.size() && buf[j] >= '0' && buf[j] <= '9') {
    ++j;
  }
  if (j == buf.size()) {
    buf.erase(0, i);
    return false;  // length prefix still arriving
  }
  if (j == i || buf[j] != '\t') {
    buf.erase(0, j + 1);  // corrupt prefix: resync past it
    return extract_frame(buf, json_out);
  }
  const std::size_t len = std::stoul(buf.substr(i, j - i));
  if (buf.size() < j + 1 + len) {
    buf.erase(0, i);
    return false;  // body still arriving
  }
  json_out = buf.substr(j + 1, len);
  buf.erase(0, j + 1 + len);
  return true;
}

void fold_record(TopState& state, const JsonValue& rec) {
  const std::string type = rec.string_or("type", "");
  if (type == "header") {
    state.have_header = true;
    state.period_ms = rec.number_or("period_ms", 0.0);
    return;
  }
  if (type == "alert") {
    ++state.alerts_seen;
    char line[256];
    const int rank = static_cast<int>(rec.number_or("rank", -1.0));
    std::snprintf(line, sizeof(line), "[%s] rank %d iter %.0f: %s",
                  rec.string_or("kind", "?").c_str(), rank,
                  rec.number_or("iteration", 0.0),
                  rec.string_or("detail", "").c_str());
    state.alert_feed.emplace_back(line);
    while (state.alert_feed.size() > kAlertFeed) {
      state.alert_feed.pop_front();
    }
    return;
  }
  if (type != "snapshot") {
    return;
  }
  state.have_snapshot = true;
  state.sample = static_cast<std::uint64_t>(rec.number_or("n", 0.0));
  state.t_us = rec.number_or("t_us", 0.0);
  state.epoch = static_cast<std::uint64_t>(rec.number_or("epoch", 0.0));
  state.iters_per_s = rec.number_or("iters_per_s", 0.0);
  state.comm_frac = rec.number_or("comm_frac", 0.0);
  if (const JsonValue* inflight = rec.find("inflight")) {
    state.inflight = inflight->number_or("count", 0.0);
    state.inflight_age_us = inflight->number_or("max_age_us", 0.0);
  }
  state.retries = rec.number_or("retries", 0.0);
  state.faults = rec.number_or("faults", 0.0);
  state.drops = rec.number_or("drops", 0.0);
  state.alerts_total = rec.number_or("alerts", 0.0);
  state.ranks.clear();
  if (const JsonValue* ranks = rec.find("ranks"); ranks != nullptr &&
                                                  ranks->is_array()) {
    for (const JsonValue& r : ranks->array) {
      RankRow row;
      row.rank = static_cast<int>(r.number_or("rank", 0.0));
      row.epoch = static_cast<std::uint64_t>(r.number_or("epoch", 0.0));
      row.idle_us = r.number_or("idle_us", 0.0);
      row.objective = r.number_or("objective", std::nan(""));
      row.step = r.number_or("step", std::nan(""));
      row.collectives = r.number_or("collectives", 0.0);
      if (const JsonValue* frac = r.find("frac")) {
        row.frac_compute = frac->number_or("compute", 0.0);
        row.frac_comm = frac->number_or("comm", 0.0);
        row.frac_wait = frac->number_or("wait", 0.0);
      }
      state.ranks.push_back(row);
    }
  }
  std::sort(state.ranks.begin(), state.ranks.end(),
            [](const RankRow& x, const RankRow& y) { return x.rank < y.rank; });
}

/// 20-cell occupancy bar: '#' compute, '=' comm, '-' wait, '.' idle.
std::string occupancy_bar(const RankRow& row) {
  constexpr int kCells = 20;
  const int compute = static_cast<int>(row.frac_compute * kCells + 0.5);
  const int comm = static_cast<int>(row.frac_comm * kCells + 0.5);
  const int wait = static_cast<int>(row.frac_wait * kCells + 0.5);
  std::string bar;
  bar.reserve(kCells);
  for (int i = 0; i < std::min(compute, kCells); ++i) bar += '#';
  for (int i = 0; i < comm && static_cast<int>(bar.size()) < kCells; ++i)
    bar += '=';
  for (int i = 0; i < wait && static_cast<int>(bar.size()) < kCells; ++i)
    bar += '-';
  while (static_cast<int>(bar.size()) < kCells) bar += '.';
  return bar;
}

void render(const TopState& state, const std::string& stream, bool follow,
            bool color) {
  std::string out;
  out.reserve(2048);
  if (follow) {
    out += "\x1b[2J\x1b[H";  // clear + home
  }
  char line[256];
  const char* bold = color ? "\x1b[1m" : "";
  const char* red = color ? "\x1b[31m" : "";
  const char* dim = color ? "\x1b[2m" : "";
  const char* reset = color ? "\x1b[0m" : "";
  std::snprintf(line, sizeof(line),
                "%srcf-top%s  stream %s  sample #%llu  t %.1fs  period %.0fms\n",
                bold, reset, stream.c_str(),
                static_cast<unsigned long long>(state.sample),
                state.t_us / 1e6, state.period_ms);
  out += line;
  std::snprintf(line, sizeof(line),
                "epoch %llu  iters/s %.1f  comm %.0f%%  in-flight %.0f "
                "(max age %.1f ms)\n",
                static_cast<unsigned long long>(state.epoch),
                state.iters_per_s, state.comm_frac * 100.0, state.inflight,
                state.inflight_age_us / 1e3);
  out += line;
  std::snprintf(line, sizeof(line),
                "retries %.0f  faults %.0f  ring drops %.0f  alerts %.0f\n\n",
                state.retries, state.faults, state.drops, state.alerts_total);
  out += line;
  out += dim;
  out += "rank  epoch     occupancy #=compute ==comm --wait    objective"
         "      step        idle\n";
  out += reset;
  for (const RankRow& row : state.ranks) {
    std::snprintf(line, sizeof(line),
                  "%4d  %-8llu  [%s]  %9.3g  %9.3g  %7.1fms\n", row.rank,
                  static_cast<unsigned long long>(row.epoch),
                  occupancy_bar(row).c_str(), row.objective, row.step,
                  row.idle_us / 1e3);
    out += line;
  }
  if (state.ranks.empty()) {
    out += "  (no rank activity yet)\n";
  }
  out += "\nalerts";
  if (!state.alert_feed.empty()) {
    std::snprintf(line, sizeof(line), " (last %zu of %llu)",
                  state.alert_feed.size(),
                  static_cast<unsigned long long>(state.alerts_seen));
    out += line;
  }
  out += ":\n";
  if (state.alert_feed.empty()) {
    out += dim;
    out += "  none\n";
    out += reset;
  }
  for (const std::string& alert : state.alert_feed) {
    out += red;
    out += "  ";
    out += alert;
    out += reset;
    out += '\n';
  }
  std::fputs(out.c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  rcf::CliParser cli("rcf-top",
                     "Terminal dashboard for rcf live telemetry streams");
  cli.add_flag("stream", "live stream to tail (file path)", "rcf_live.jsonl");
  cli.add_flag("once", "consume to EOF, render one frame, exit", "false");
  cli.add_flag("interval-ms", "redraw / poll period in follow mode", "500");
  cli.add_flag("fail-on-alert", "exit 2 if any alert record was seen",
               "false");
  cli.add_flag("plain", "disable ANSI colors and screen clearing", "false");
  cli.add_flag("max-seconds",
               "stop following after this many seconds (0 = forever)", "0");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  std::string stream = cli.get_string("stream", "rcf_live.jsonl");
  if (!cli.positional().empty()) {
    stream = cli.positional().front();
  }
  const bool once = cli.get_bool("once", false);
  const bool fail_on_alert = cli.get_bool("fail-on-alert", false);
  const auto interval =
      std::chrono::milliseconds(std::max<std::int64_t>(
          10, cli.get_int("interval-ms", 500)));
  const double max_seconds = cli.get_double("max-seconds", 0.0);
  bool color = !cli.get_bool("plain", false);
#if defined(__unix__) || defined(__APPLE__)
  color = color && ::isatty(1) != 0;
#else
  color = false;
#endif

  std::ifstream in(stream, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "rcf-top: cannot open stream %s\n", stream.c_str());
    return 1;
  }

  TopState state;
  std::string buf, json;
  char chunk[1 << 16];
  const auto started = std::chrono::steady_clock::now();
  bool dirty = false;
  for (;;) {
    in.clear();  // EOF is transient while the producer is still writing
    in.read(chunk, sizeof(chunk));
    const std::streamsize got = in.gcount();
    if (got > 0) {
      buf.append(chunk, static_cast<std::size_t>(got));
      while (extract_frame(buf, json)) {
        if (const auto rec = rcf::parse_json(json)) {
          fold_record(state, *rec);
          dirty = true;
        }
      }
      continue;  // drain everything available before rendering/sleeping
    }
    if (once) {
      break;
    }
    if (dirty) {
      render(state, stream, /*follow=*/true, color);
      dirty = false;
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    if (max_seconds > 0.0 && elapsed >= max_seconds) {
      break;
    }
    std::this_thread::sleep_for(interval);
  }
  if (once || dirty) {
    render(state, stream, /*follow=*/false, color);
  }
  if (!state.have_snapshot) {
    std::fprintf(stderr, "rcf-top: no snapshot records in %s\n",
                 stream.c_str());
    return 1;
  }
  if (fail_on_alert && state.alerts_seen > 0) {
    std::fprintf(stderr, "rcf-top: %llu alert(s) on the stream\n",
                 static_cast<unsigned long long>(state.alerts_seen));
    return 2;
  }
  return 0;
}
