// rcf-chaos CLI: chaos soak harness for the fault-injection / resilience
// layer (src/fault).  Runs a matrix of declarative fault plans against
// 4-rank distributed solves, with the verification layer (RCF_CHECK) armed,
// and asserts the resilience contract:
//
//   * recoverable plans (stragglers, rendezvous skew, transient collective
//     failures absorbed by retry, one-shot payload poisoning absorbed by
//     the recompute fallback) must converge to the *bitwise identical*
//     iterate as the fault-free baseline, with zero contract-checker
//     reports -- legitimate retries are not allowed to trip the checker;
//   * fatal plans (hard rank aborts, retry exhaustion, persistent payload
//     poisoning) must surface a structured SolveResult::failure with a
//     diagnostic reason -- never a crash, a hang, or a silently wrong w;
//   * an injected proximal-Newton outer-loop abort plus checkpoint/restore
//     must resume to the bitwise identical final iterate;
//   * straggler plans aimed at *in-flight* nonblocking collectives
//     (stage=wait skew/delay against the chunk-pipelined iallreduce path)
//     must neither perturb the iterate nor trip the contract checker --
//     a late wait is a performance event, not a correctness event.
//
//   rcf-chaos                      # full matrix
//   rcf-chaos --suite=recover      # recoverable plans only
//   rcf-chaos --suite=fatal        # fatal plans only
//   rcf-chaos --suite=resume       # PN abort + checkpoint resume
//   rcf-chaos --suite=straggler    # stage=wait plans vs the pipelined path
//   rcf-chaos --list               # print the plan matrix and exit
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "check/options.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "core/checkpoint.hpp"
#include "core/distributed.hpp"
#include "core/problem.hpp"
#include "core/prox_newton.hpp"
#include "data/synthetic.hpp"
#include "dist/thread_comm.hpp"
#include "fault/plan.hpp"
#include "la/blas.hpp"
#include "obs/metrics.hpp"

namespace {

struct ChaosConfig {
  std::size_t m = 1200;
  std::size_t d = 32;
  int iters = 32;
  int k = 4;
  int s = 2;
  int ranks = 4;
  std::uint64_t seed = 13;
};

/// One entry of the chaos matrix.  `expect_faults` / `expect_retries`
/// assert that the plan actually exercised the layer it targets (a matrix
/// entry whose plan never fires would silently test nothing).
struct ChaosCase {
  const char* name;
  const char* plan;
  bool fatal;
  bool expect_faults = true;
  bool expect_retries = false;
  /// Run through the chunk-pipelined iallreduce path (straggler suite).
  bool pipelined = false;
  /// Pipeline staleness S.  Cases with S = 0 must match the *blocking*
  /// fault-free baseline bitwise; S > 0 cases are compared against a
  /// fault-free pipelined run at the same S (bounded staleness is
  /// deterministic, so a straggler must not change the iterate either way).
  int staleness = 0;
};

// The soak matrix.  Call indices are per-rank engine-collective indices
// (the 32-iteration / k=4 solve performs 8 stage-C allreduces, 0..7).
constexpr ChaosCase kMatrix[] = {
    // -- recoverable ---------------------------------------------------------
    {"delay-straggler", "delay:rank=1,us=2000,every=3", false},
    {"skew-all-ranks", "skew:us=1500,seed=7", false},
    {"transient-single", "transient:rank=2,call=4", false, true, true},
    {"transient-repeat", "transient:rank=0,call=2,count=2", false, true, true},
    {"transient-two-ranks", "transient:rank=3,call=1;transient:rank=1,call=6",
     false, true, true},
    {"nan-poison-once", "nan:rank=1,call=3,words=4", false},
    {"bitflip-exponent", "bitflip:rank=2,call=5,word=7,bit=62", false},
    {"combo",
     "delay:rank=0,us=500,every=4;transient:rank=2,call=3;nan:rank=3,call=6",
     false, true, true},
    // -- fatal ---------------------------------------------------------------
    {"abort-hard", "abort:rank=2,call=4", true},
    {"transient-exhaust", "transient:rank=1,call=2,count=99", true, true,
     true},
    {"nan-persistent", "nan:rank=0,every=1,count=64,words=8", true},
};

// Straggler matrix: plans aimed at the nonblocking engine.  stage=wait
// specs fire when a rank first waits on an *in-flight* iallreduce handle
// (the 32-iteration / k=4 pipelined solve posts 8 chunk reductions, wait
// call indices 0..7); stage=post specs skew the posting rank instead.
// Either way the reduction result is untouched, so recoverable cases must
// stay bitwise identical to their fault-free baseline with a clean
// contract checker.
constexpr ChaosCase kStragglerMatrix[] = {
    // -- recoverable ---------------------------------------------------------
    {"wait-straggler", "delay:rank=1,us=2000,every=2,stage=wait", false, true,
     false, true, 0},
    {"wait-skew-all", "skew:us=1500,seed=11,stage=wait", false, true, false,
     true, 0},
    {"post-straggler", "delay:rank=2,us=1500,every=3,stage=post", false, true,
     false, true, 0},
    {"wait-transient", "transient:rank=3,call=1,stage=wait", false, true,
     true, true, 0},
    {"stale-wait-skew", "skew:us=2000,seed=5,stage=wait", false, true, false,
     true, 1},
    {"stale-wait-straggler", "delay:rank=0,us=2500,every=2,stage=wait", false,
     true, false, true, 2},
    // -- fatal ---------------------------------------------------------------
    {"wait-abort", "abort:rank=0,call=2,stage=wait", true, true, false, true,
     0},
};

rcf::core::LassoProblem make_problem(const ChaosConfig& cfg,
                                     rcf::data::Dataset& storage) {
  rcf::data::SyntheticOptions opts;
  opts.num_samples = cfg.m;
  opts.num_features = cfg.d;
  opts.density = 0.4;
  opts.condition = 30.0;
  opts.noise_stddev = 0.05;
  opts.seed = cfg.seed;
  storage = rcf::data::make_regression(opts);
  return rcf::core::LassoProblem(storage, 0.01);
}

rcf::core::SolverOptions solver_options(const ChaosConfig& cfg) {
  rcf::core::SolverOptions opts;
  opts.max_iters = cfg.iters;
  opts.sampling_rate = 0.2;
  opts.k = cfg.k;
  opts.s = cfg.s;
  opts.track_history = false;
  // Keep the soak fast: injected transients back off 50us, not the
  // production default.
  opts.retry.backoff_us = 50;
  return opts;
}

bool run_suite(const std::string& name, const std::function<void()>& body) {
  try {
    body();
    std::printf("PASS  %s\n", name.c_str());
    return true;
  } catch (const std::exception& e) {
    std::printf("FAIL  %s\n      %s\n", name.c_str(), e.what());
    return false;
  }
}

struct CheckerCounters {
  std::uint64_t contract = 0;
  std::uint64_t partition = 0;
  std::uint64_t checked = 0;

  static CheckerCounters snapshot() {
    auto& reg = rcf::obs::MetricsRegistry::global();
    return {reg.counter("check.contract_violations").value(),
            reg.counter("check.partition_violations").value(),
            reg.counter("check.collectives_checked").value()};
  }
};

/// Asserts a run raised no checker reports and actually exercised the
/// checker (collectives_checked advanced).
void require_clean_checker(const CheckerCounters& before) {
  const auto after = CheckerCounters::snapshot();
  if (after.contract != before.contract) {
    throw rcf::Error("contract checker raised " +
                     std::to_string(after.contract - before.contract) +
                     " report(s) -- fault layer must not trip the checker");
  }
  if (after.partition != before.partition) {
    throw rcf::Error("partition auditor raised " +
                     std::to_string(after.partition - before.partition) +
                     " report(s)");
  }
  if (after.checked == before.checked) {
    throw rcf::Error("contract checker did not run (0 collectives checked)");
  }
}

void run_case(const ChaosCase& c, const ChaosConfig& cfg,
              const rcf::core::LassoProblem& problem,
              const rcf::core::SolveResult& baseline) {
  const auto before = CheckerCounters::snapshot();
  auto opts = solver_options(cfg);
  opts.pipeline = c.pipelined;
  opts.staleness = c.staleness;
  rcf::fault::ScopedFaultPlan scoped{std::string_view(c.plan)};
  rcf::dist::ThreadGroup group(cfg.ranks);
  const auto result =
      rcf::core::solve_rc_sfista_distributed(problem, opts, group);

  if (c.fatal) {
    if (result.ok()) {
      throw rcf::Error("fatal plan produced an ok() result -- expected a "
                       "structured failure");
    }
    if (result.failure_reason.empty()) {
      throw rcf::Error("structured failure carries no failure_reason");
    }
  } else {
    if (!result.ok()) {
      throw rcf::Error("recoverable plan failed: " + result.failure_reason);
    }
    const double diff =
        rcf::la::max_abs_diff(result.w.span(), baseline.w.span());
    if (diff != 0.0) {
      throw rcf::Error("recovered iterate diverged from fault-free baseline "
                       "by " +
                       std::to_string(diff) + " (must be bitwise identical)");
    }
    require_clean_checker(before);
  }
  if (c.expect_faults && result.comm_stats.faults_injected == 0) {
    throw rcf::Error("plan never fired (faults_injected == 0) -- the case "
                     "tests nothing");
  }
  if (c.expect_retries && result.comm_stats.retries == 0) {
    throw rcf::Error("transient plan absorbed no retries (retries == 0)");
  }
}

/// PN outer-loop abort + checkpoint/restore: the resumed solve must replay
/// the remaining outer iterations bitwise identically.
void run_resume_suite(const rcf::core::LassoProblem& problem,
                      const ChaosConfig& cfg) {
  rcf::core::PnOptions opts;
  opts.max_outer = 8;
  opts.inner_iters = 16;
  opts.inner = rcf::core::PnInnerSolver::kRcSfista;
  opts.k = 2;
  opts.s = 2;
  opts.hessian_sampling_rate = 0.2;
  opts.seed = cfg.seed;
  opts.track_history = false;

  const auto baseline = rcf::core::solve_proximal_newton(problem, opts);
  if (!baseline.ok()) {
    throw rcf::Error("fault-free PN baseline failed: " +
                     baseline.failure_reason);
  }

  // Interrupted run: abort before outer iteration 6; the sink keeps the
  // last completed checkpoint (outer == 5).
  rcf::core::PnCheckpoint last;
  opts.checkpoint_sink = [&last](const rcf::core::PnCheckpoint& ck) {
    last = ck;
  };
  rcf::core::SolveResult interrupted;
  {
    rcf::fault::ScopedFaultPlan scoped{
        std::string_view("abort:at=pn.outer,index=6")};
    interrupted = rcf::core::solve_proximal_newton(problem, opts);
  }
  if (interrupted.ok()) {
    throw rcf::Error("injected pn.outer abort did not fail the solve");
  }
  if (interrupted.iterations != 5 || last.outer != 5) {
    throw rcf::Error("abort at outer 6 left iterations=" +
                     std::to_string(interrupted.iterations) +
                     ", checkpoint outer=" + std::to_string(last.outer) +
                     " (expected 5/5)");
  }

  // Round-trip the checkpoint through its JSON serialization, as a restart
  // from disk would.
  const rcf::core::PnCheckpoint restored =
      rcf::core::checkpoint_from_json(rcf::core::to_json(last));

  opts.checkpoint_sink = nullptr;
  opts.resume_from = &restored;
  const auto resumed = rcf::core::solve_proximal_newton(problem, opts);
  if (!resumed.ok()) {
    throw rcf::Error("resumed PN solve failed: " + resumed.failure_reason);
  }
  const double diff =
      rcf::la::max_abs_diff(resumed.w.span(), baseline.w.span());
  if (diff != 0.0) {
    throw rcf::Error("resumed iterate diverged from uninterrupted run by " +
                     std::to_string(diff) + " (must be bitwise identical)");
  }
  if (resumed.objective != baseline.objective) {
    throw rcf::Error("resumed objective differs from uninterrupted run");
  }
}

}  // namespace

int main(int argc, char** argv) {
  rcf::CliParser cli("rcf-chaos",
                     "Chaos soak harness: fault-plan matrix against 4-rank "
                     "solves with the verification layer armed");
  cli.add_flag("suite", "all | recover | fatal | resume | straggler", "all");
  cli.add_flag("m", "synthetic dataset rows", "1200");
  cli.add_flag("d", "synthetic dataset features", "32");
  cli.add_flag("iters", "solver iterations", "32");
  cli.add_flag("k", "RC-SFISTA overlap parameter", "4");
  cli.add_flag("s", "redundant update sweeps", "2");
  cli.add_flag("ranks", "SPMD rank count", "4");
  cli.add_flag("seed", "dataset + sampling seed", "13");
  cli.add_flag("list", "print the plan matrix and exit", "0");
  if (!cli.parse(argc, argv)) {
    return 0;
  }

  ChaosConfig cfg;
  cfg.m = static_cast<std::size_t>(cli.get_int("m", 1200));
  cfg.d = static_cast<std::size_t>(cli.get_int("d", 32));
  cfg.iters = static_cast<int>(cli.get_int("iters", 32));
  cfg.k = static_cast<int>(cli.get_int("k", 4));
  cfg.s = static_cast<int>(cli.get_int("s", 2));
  cfg.ranks = static_cast<int>(cli.get_int("ranks", 4));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 13));
  const std::string suite = cli.get_string("suite", "all");
  static constexpr const char* kSuites[] = {"all", "recover", "fatal",
                                            "resume", "straggler"};
  if (std::find_if(std::begin(kSuites), std::end(kSuites),
                   [&suite](const char* s) { return suite == s; }) ==
      std::end(kSuites)) {
    std::fprintf(stderr,
                 "rcf-chaos: unknown --suite '%s' "
                 "(expected all|recover|fatal|resume|straggler)\n",
                 suite.c_str());
    return 2;
  }

  if (cli.get_int("list", 0) != 0) {
    for (const ChaosCase& c : kMatrix) {
      std::printf("%-22s %-7s %s\n", c.name, c.fatal ? "fatal" : "recover",
                  rcf::fault::describe(rcf::fault::parse_fault_plan(c.plan))
                      .c_str());
    }
    for (const ChaosCase& c : kStragglerMatrix) {
      std::printf("%-22s %-7s [pipelined S=%d] %s\n", c.name,
                  c.fatal ? "fatal" : "recover", c.staleness,
                  rcf::fault::describe(rcf::fault::parse_fault_plan(c.plan))
                      .c_str());
    }
    return 0;
  }

  rcf::data::Dataset dataset;
  const auto problem = make_problem(cfg, dataset);

  // The whole soak runs with the verification layer armed (the acceptance
  // bar is "chaos matrix passes under RCF_CHECK=1 with zero checker false
  // positives"), and with an empty scoped plan quieting any ambient
  // RCF_FAULT so the baseline is genuinely fault-free.
  rcf::check::ScopedCheckEnable check_on(true);
  rcf::fault::ScopedFaultPlan quiet{rcf::fault::FaultPlan{}};

  bool ok = true;
  const auto want = [&suite](const char* name) {
    return suite == "all" || suite == name;
  };

  if (want("recover") || want("fatal")) {
    rcf::dist::ThreadGroup group(cfg.ranks);
    const auto baseline = rcf::core::solve_rc_sfista_distributed(
        problem, solver_options(cfg), group);
    if (!baseline.ok()) {
      std::printf("FAIL  fault-free baseline\n      %s\n",
                  baseline.failure_reason.c_str());
      return 1;
    }
    for (const ChaosCase& c : kMatrix) {
      if (!want(c.fatal ? "fatal" : "recover")) {
        continue;
      }
      ok = run_suite(std::string(c.fatal ? "fatal   " : "recover ") + c.name +
                         "  [" + c.plan + "]",
                     [&] { run_case(c, cfg, problem, baseline); }) &&
           ok;
    }
  }
  if (want("straggler")) {
    // Fault-free baselines: the blocking iterate doubles as the S = 0
    // pipelined baseline (the pipeline is bitwise identical to blocking at
    // staleness 0); S > 0 cases compare against a fault-free pipelined run
    // at the same S.
    std::vector<std::pair<int, rcf::core::SolveResult>> baselines;
    const auto baseline_for = [&](int staleness) -> rcf::core::SolveResult& {
      for (auto& [s, b] : baselines) {
        if (s == staleness) {
          return b;
        }
      }
      auto opts = solver_options(cfg);
      opts.pipeline = staleness > 0;
      opts.staleness = staleness;
      rcf::dist::ThreadGroup group(cfg.ranks);
      baselines.emplace_back(staleness, rcf::core::solve_rc_sfista_distributed(
                                            problem, opts, group));
      return baselines.back().second;
    };
    for (const ChaosCase& c : kStragglerMatrix) {
      const auto& baseline = baseline_for(c.staleness);
      if (!baseline.ok()) {
        std::printf("FAIL  straggler baseline (S=%d)\n      %s\n",
                    c.staleness, baseline.failure_reason.c_str());
        ok = false;
        continue;
      }
      ok = run_suite(std::string(c.fatal ? "fatal   " : "straggle ") +
                         c.name + "  [" + c.plan + "]",
                     [&] { run_case(c, cfg, problem, baseline); }) &&
           ok;
    }
  }
  if (want("resume")) {
    ok = run_suite("resume  pn-checkpoint  [abort:at=pn.outer,index=6]",
                   [&] { run_resume_suite(problem, cfg); }) &&
         ok;
  }
  return ok ? 0 : 1;
}
