// rcf-report CLI: ingest trace / metrics / convergence artifacts from a
// traced solve and print a text, markdown, or JSON analysis (see
// report.hpp for what is reconstructed).
//
//   rcf-report --trace run.trace.json --metrics run.metrics.json
//   rcf-report --jsonl run.jsonl --conv run.conv.jsonl --format=markdown
//   rcf-report --metrics run.metrics.json --format=json --out report.json
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "report.hpp"

namespace {

bool slurp(const std::string& path, std::string& out, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  rcf::CliParser cli("rcf-report",
                     "Offline analyzer for rcf trace/metrics artifacts");
  cli.add_flag("trace", "Chrome trace-event JSON file (--trace-out)");
  cli.add_flag("jsonl", "flat JSONL trace file (--trace-jsonl)");
  cli.add_flag("metrics", "metrics registry JSON file (--metrics-out)");
  cli.add_flag("conv", "convergence JSONL file (--conv-out)");
  cli.add_flag("format", "output format: text | markdown | json", "text");
  cli.add_flag("out", "write the report to this file instead of stdout");
  if (!cli.parse(argc, argv)) {
    return 0;
  }

  const std::string trace_path = cli.get_string("trace", "");
  const std::string jsonl_path = cli.get_string("jsonl", "");
  const std::string metrics_path = cli.get_string("metrics", "");
  const std::string conv_path = cli.get_string("conv", "");
  const std::string format = cli.get_string("format", "text");
  const std::string out_path = cli.get_string("out", "");

  if (trace_path.empty() && jsonl_path.empty() && metrics_path.empty() &&
      conv_path.empty()) {
    std::fprintf(stderr,
                 "rcf-report: nothing to analyze; pass at least one of "
                 "--trace / --jsonl / --metrics / --conv (see --help)\n");
    return 2;
  }
  if (format != "text" && format != "markdown" && format != "json") {
    std::fprintf(stderr, "rcf-report: unknown --format '%s'\n",
                 format.c_str());
    return 2;
  }

  std::string error;
  std::vector<rcf::tools::ReportEvent> events;
  if (!trace_path.empty() &&
      !rcf::tools::load_chrome_trace(trace_path, events, error)) {
    std::fprintf(stderr, "rcf-report: %s\n", error.c_str());
    return 1;
  }
  if (!jsonl_path.empty() &&
      !rcf::tools::load_jsonl_trace(jsonl_path, events, error)) {
    std::fprintf(stderr, "rcf-report: %s\n", error.c_str());
    return 1;
  }
  std::vector<rcf::tools::ConvRow> conv;
  if (!conv_path.empty() &&
      !rcf::tools::load_convergence(conv_path, conv, error)) {
    std::fprintf(stderr, "rcf-report: %s\n", error.c_str());
    return 1;
  }
  std::string metrics_json;
  if (!metrics_path.empty()) {
    if (!slurp(metrics_path, metrics_json, error)) {
      std::fprintf(stderr, "rcf-report: %s\n", error.c_str());
      return 1;
    }
    // An empty or blank metrics file would otherwise be indistinguishable
    // from "no --metrics passed" and silently drop every metrics section.
    if (metrics_json.find_first_not_of(" \t\r\n") == std::string::npos) {
      std::fprintf(stderr,
                   "rcf-report: %s is empty; expected the metrics JSON a "
                   "traced run writes via --metrics-out / RCF_METRICS\n",
                   metrics_path.c_str());
      return 1;
    }
  }

  rcf::tools::Report report;
  if (!rcf::tools::build_report(events, metrics_json, conv, report, error)) {
    std::fprintf(stderr, "rcf-report: %s\n", error.c_str());
    return 1;
  }

  std::string rendered;
  if (format == "markdown") {
    rendered = rcf::tools::render_markdown(report);
  } else if (format == "json") {
    rendered = rcf::tools::render_json(report);
  } else {
    rendered = rcf::tools::render_text(report);
  }

  if (out_path.empty()) {
    std::cout << rendered;
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "rcf-report: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << rendered;
  }
  return 0;
}
